"""Streamed/sharded instance generation and the lazy shard store.

The load-bearing property: the sharded generator's in-memory assembly
(:func:`generate_chip_sharded`) and the round trip through disk shards
(:func:`stream_chip_shards` + :meth:`ShardStore.chip_full`) describe the
*same chip*, bit for bit — and shard loading order cannot matter,
because each shard is parsed independently and assembled in index order.
"""

import json
import random

import pytest

from repro.chip.generator import (
    ChipSpec,
    ShardPlan,
    TABLE_CHIP_SPECS,
    chip_spec,
    generate_chip_sharded,
    generate_region,
    iter_regions,
    scale_spec,
    stream_chip_shards,
)
from repro.io.shards import (
    ShardFormatError,
    ShardStore,
    dump_shard,
    load_shard,
)


def canonical_chip(chip):
    """Order-stable content signature of a chip's nets and blockages."""
    nets = tuple(
        (
            net.name,
            net.wire_type,
            net.weight,
            tuple(
                (
                    pin.name,
                    pin.circuit_id,
                    tuple(
                        (layer, rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)
                        for layer, rect in pin.shapes
                    ),
                )
                for pin in net.pins
            ),
        )
        for net in chip.nets
    )
    blockages = tuple(
        (b.layer, b.rect.x_lo, b.rect.y_lo, b.rect.x_hi, b.rect.y_hi, b.label)
        for b in chip.blockages
    )
    return nets, blockages


@pytest.fixture(scope="module")
def small_spec():
    return ChipSpec("shardtest", rows=4, row_width_cells=16, net_count=60, seed=3)


@pytest.fixture(scope="module")
def small_plan(small_spec):
    return ShardPlan(small_spec, rows_per_region=2, cols_per_region=8)


class TestStreamedEqualsInMemory:
    def test_round_trip_bit_identical(self, tmp_path, small_spec, small_plan):
        reference = generate_chip_sharded(small_spec, small_plan)
        manifest = stream_chip_shards(small_spec, str(tmp_path), small_plan)
        loaded = ShardStore(manifest).chip_full()
        assert canonical_chip(loaded) == canonical_chip(reference)
        assert loaded.die == reference.die
        assert loaded.name == reference.name

    @pytest.mark.parametrize("seed", [1, 9, 42])
    def test_round_trip_across_seeds(self, tmp_path, seed):
        spec = ChipSpec(
            f"shardseed{seed}", rows=2, row_width_cells=8, net_count=12, seed=seed
        )
        plan = ShardPlan(spec, rows_per_region=1, cols_per_region=4)
        manifest = stream_chip_shards(spec, str(tmp_path / str(seed)), plan)
        assert canonical_chip(ShardStore(manifest).chip_full()) == canonical_chip(
            generate_chip_sharded(spec, plan)
        )

    def test_net_quota_spread(self, small_spec, small_plan):
        quotas = [
            small_plan.region_net_quota(i)
            for i in range(small_plan.num_regions)
        ]
        assert sum(quotas) == small_spec.net_count
        assert max(quotas) - min(quotas) <= 1

    def test_regions_generate_independently(self, small_spec, small_plan):
        """Generating region k alone equals generating it mid-stream."""
        alone = generate_region(small_spec, small_plan, 3)
        streamed = list(iter_regions(small_spec, small_plan))[3]
        assert [n.name for n in alone.nets] == [n.name for n in streamed.nets]
        assert dump_shard(alone) == dump_shard(streamed)


class TestShardLoadingOrder:
    def test_load_order_independent(self, tmp_path, small_spec, small_plan):
        manifest = stream_chip_shards(small_spec, str(tmp_path), small_plan)
        sequential = ShardStore(manifest)
        reference = canonical_chip(sequential.chip_full())
        shuffled = ShardStore(manifest)
        order = list(range(len(shuffled)))
        random.Random(5).shuffle(order)
        for index in order:
            shuffled.shard(index)
        assert canonical_chip(shuffled.chip_full()) == reference

    def test_shard_parse_round_trip(self, small_spec, small_plan):
        region = generate_region(small_spec, small_plan, 1)
        data = load_shard(dump_shard(region))
        assert data.index == region.index
        assert data.box == region.box
        assert dump_shard(data) == dump_shard(region)


class TestShardStore:
    def test_lru_eviction_bounds_residency(self, tmp_path, small_spec, small_plan):
        manifest = stream_chip_shards(small_spec, str(tmp_path), small_plan)
        store = ShardStore(manifest, max_resident=2)
        for index in range(len(store)):
            store.shard(index)
            assert store.resident_count <= 2
        # Reloading an evicted shard gives back identical content.
        first = dump_shard(store.shard(0))
        assert first == dump_shard(load_shard(
            (tmp_path / "shard_00000.chip").read_text(encoding="utf-8")
        ))

    def test_chip_for_region_is_bounded(self, tmp_path, small_spec, small_plan):
        manifest = stream_chip_shards(small_spec, str(tmp_path), small_plan)
        store = ShardStore(manifest)
        chip = store.chip_for_region(3)
        box = store.shard_box(3)
        assert chip.die.width < store.die.width
        assert chip.die.x_lo <= box.x_lo and chip.die.x_hi >= box.x_hi
        names = {net.name for net in chip.nets}
        assert names == {net.name for net in store.shard(3).nets}
        assert all(name.startswith("n3_") for name in names)
        for blockage in chip.blockages:
            assert blockage.rect.intersection(chip.die) is not None

    def test_prefetch_touches_overlapping_shards(
        self, tmp_path, small_spec, small_plan
    ):
        manifest = stream_chip_shards(small_spec, str(tmp_path), small_plan)
        store = ShardStore(manifest)
        box = store.shard_box(0)
        indices = store.prefetch(box)
        assert 0 in indices
        assert store.resident_count >= 1

    def test_store_accepts_directory(self, tmp_path, small_spec, small_plan):
        stream_chip_shards(small_spec, str(tmp_path), small_plan)
        store = ShardStore(str(tmp_path))
        assert len(store) == small_plan.num_regions
        assert store.total_nets == small_spec.net_count

    def test_bad_manifest_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"schema": "something-else"}), encoding="utf-8")
        with pytest.raises(ShardFormatError):
            ShardStore(str(path))

    def test_bad_shard_line_rejected(self):
        with pytest.raises(ShardFormatError):
            load_shard("SHARD 0 BOX 0 0 10 10\nWAT 1 2 3\nEND\n")


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs, field",
        [
            (dict(rows=0), "rows"),
            (dict(row_width_cells=0), "row_width_cells"),
            (dict(net_count=0), "net_count"),
            (dict(num_layers=1), "num_layers"),
        ],
    )
    def test_bad_spec_names_field(self, kwargs, field):
        base = dict(rows=2, row_width_cells=4, net_count=4)
        base.update(kwargs)
        with pytest.raises(ValueError, match=field):
            ChipSpec("bad", **base)

    def test_unknown_spec_lists_valid_names(self):
        with pytest.raises(KeyError) as excinfo:
            chip_spec("not_a_spec")
        message = str(excinfo.value)
        assert "not_a_spec" in message
        for spec in TABLE_CHIP_SPECS:
            assert spec.name in message

    def test_known_spec_lookup(self):
        name = TABLE_CHIP_SPECS[0].name
        assert chip_spec(name).name == name

    def test_scale_spec_covers_requested_nets(self):
        spec, plan = scale_spec(1000)
        assert spec.net_count == 1000
        assert sum(
            plan.region_net_quota(i) for i in range(plan.num_regions)
        ) == 1000
