"""Tests for the crash-tolerant parallel detailed-routing pool (Sec. 5.1).

Determinism comparisons run serial and parallel in the *same* process:
the serial baseline itself is hash-seed sensitive across interpreter
launches, so cross-process comparisons would test the wrong thing.
"""

import random

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute import pool
from repro.droute.partition import (
    PartitionRound,
    assign_nets_to_rounds,
    partition_sequence,
)
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace
from repro.flow.faults import FaultInjector, FaultPlan, FaultSpec
from repro.geometry.rect import Rect

POOL_SPEC = ChipSpec("pooltest", rows=3, row_width_cells=6, net_count=12, seed=11)

needs_fork = pytest.mark.skipif(
    not pool.fork_available(), reason="fork start method unavailable"
)


def run_router(workers, fault_plan=None, **kwargs):
    """Fresh chip + space; returns (result, per-net route item sets)."""
    chip = generate_chip(POOL_SPEC)
    space = RoutingSpace(chip)
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    router = DetailedRouter(
        space, workers=workers, fault_injector=injector, **kwargs
    )
    result = router.run()
    routes = {
        name: (
            sorted(
                (t, lv, s.layer, s.x0, s.y0, s.x1, s.y1)
                for s, lv, t in route.wire_items()
            ),
            sorted(
                (t, lv, v.via_layer, v.x, v.y) for v, lv, t in route.via_items()
            ),
        )
        for name, route in space.routes.items()
    }
    return result, routes, injector


def round_zero_victim():
    """A net routed in a multi-region round (so worker faults can fire)."""
    chip = generate_chip(POOL_SPEC)
    sequence = partition_sequence(chip, 4)
    rounds = assign_nets_to_rounds(chip, sequence)
    return rounds[0][0][1].name


class TestRegionOfBisection:
    def test_bisect_matches_linear_scan_randomized(self):
        chip = generate_chip(POOL_SPEC)
        rng = random.Random(7)
        die = chip.die
        for part in partition_sequence(chip, 8):
            assert part._cut_xs is not None or len(part.regions) == 1
            for _ in range(300):
                x0 = rng.randrange(die.x_lo - 50, die.x_hi + 50)
                y0 = rng.randrange(die.y_lo - 50, die.y_hi + 50)
                box = Rect(
                    x0, y0, x0 + rng.randrange(0, 400), y0 + rng.randrange(0, 400)
                )
                assert part.region_of(box) == part._region_of_linear(box)
            # Cut-edge boxes exercise the closed-upper-edge tie case.
            for cut in part._cut_xs or ():
                for width in (0, 1, 37):
                    box = Rect(cut, die.y_lo + 60, cut + width, die.y_lo + 90)
                    assert part.region_of(box) == part._region_of_linear(box)

    def test_irregular_regions_fall_back_to_linear(self):
        # Two stacked regions do not tile the x-axis: no cut list.
        part = PartitionRound(
            [Rect(0, 0, 100, 50), Rect(0, 50, 100, 100)], safety_margin=0
        )
        assert part._cut_xs is None
        assert part.region_of(Rect(10, 10, 20, 20)) == 0
        assert part.region_of(Rect(10, 60, 20, 70)) == 1
        assert part.region_of(Rect(10, 10, 20, 70)) is None

    def test_net_assignment_unchanged_by_bisection(self):
        chip = generate_chip(POOL_SPEC)
        sequence = partition_sequence(chip, 4)
        fast = assign_nets_to_rounds(chip, sequence)
        for part in sequence:
            part._cut_xs = None  # force the linear oracle
        slow = assign_nets_to_rounds(chip, sequence)
        assert [
            [(r, n.name) for r, n in rnd] for rnd in fast
        ] == [[(r, n.name) for r, n in rnd] for rnd in slow]


@needs_fork
class TestPoolDeterminism:
    def test_workers_match_serial_exactly(self):
        serial, serial_routes, _ = run_router(1)
        for workers in (2, 4):
            par, par_routes, _ = run_router(workers)
            assert par.routed == serial.routed
            assert par.failed == serial.failed
            assert par.wire_length == serial.wire_length
            assert par.via_count == serial.via_count
            assert par_routes == serial_routes
            assert not par.pool_degraded

    def test_worker_count_only_sets_processes_not_structure(self):
        # threads (=4 default) governs the partition rounds; workers=3
        # must still reproduce the serial result bit-identically.
        serial, serial_routes, _ = run_router(1)
        par, par_routes, _ = run_router(3)
        assert par_routes == serial_routes
        assert par.summary()["wire_length"] == serial.summary()["wire_length"]

    def test_degrades_cleanly_without_fork(self, monkeypatch):
        monkeypatch.setattr(pool, "fork_available", lambda: False)
        serial, serial_routes, _ = run_router(1)
        par, par_routes, _ = run_router(2)
        assert par.pool_degraded
        assert any(e["kind"] == "pool_unavailable" for e in par.pool_events)
        assert par_routes == serial_routes


@needs_fork
class TestCrashRecovery:
    def test_worker_kill_is_recovered(self):
        victim = round_zero_victim()
        plan = FaultPlan([FaultSpec("worker", nets=[victim], kind="kill")], seed=5)
        result, _routes, injector = run_router(2, fault_plan=plan)
        crashes = [e for e in result.pool_events if e["kind"] == "worker_crash"]
        assert crashes, result.pool_events
        assert victim in crashes[0]["charged_nets"]
        assert victim in result.routed
        assert len(result.routed) == 12
        assert injector.fire_count("worker") == 1
        assert not result.pool_degraded

    def test_worker_stall_is_killed_and_recovered(self):
        victim = round_zero_victim()
        plan = FaultPlan(
            [FaultSpec("worker", nets=[victim], kind="stall", stall_s=30.0)],
            seed=5,
        )
        result, _routes, _ = run_router(
            2, fault_plan=plan, region_timeout_s=2.0
        )
        timeouts = [e for e in result.pool_events if e["kind"] == "worker_timeout"]
        assert timeouts, result.pool_events
        assert victim in result.routed
        assert len(result.routed) == 12

    def test_repeated_crashes_degrade_pool_and_still_complete(self):
        # Unlimited kills on every net: every spawned worker dies, the
        # supervisor runs out of incident budget and degrades the whole
        # pool to in-process serial execution — which must still finish.
        chip = generate_chip(POOL_SPEC)
        names = [net.name for net in chip.nets]
        plan = FaultPlan(
            [FaultSpec("worker", nets=names, kind="kill", fires_per_net=None)],
            seed=5,
        )
        result, _routes, _ = run_router(2, fault_plan=plan)
        assert result.pool_degraded
        assert any(e["kind"] == "degraded" for e in result.pool_events)
        assert len(result.routed) == 12

    def test_crash_result_matches_serial(self):
        # Recovery must not change the answer, only the path taken.
        serial, serial_routes, _ = run_router(1)
        victim = round_zero_victim()
        plan = FaultPlan([FaultSpec("worker", nets=[victim], kind="kill")], seed=5)
        result, routes, _ = run_router(2, fault_plan=plan)
        assert routes == serial_routes
        assert result.routed == serial.routed


@needs_fork
class TestRoundCheckpointResume:
    def _flow(self, **kwargs):
        from repro.flow.bonnroute import BonnRouteFlow

        return BonnRouteFlow(
            generate_chip(POOL_SPEC), gr_phases=4, seed=1, cleanup=False,
            **kwargs,
        )

    def test_kill_after_round_one_resumes_to_same_result(self, tmp_path):
        import json

        path = str(tmp_path / "ckpt.json")
        baseline = self._flow().run()

        class Stop(Exception):
            pass

        flow = self._flow(workers=2, checkpoint_path=path)
        orig_save = flow._save_checkpoint

        def kill_after_first_round(*args, **kwargs):
            orig_save(*args, **kwargs)
            partial = kwargs.get("detailed_partial")
            if partial and partial["rounds_done"] == 1:
                raise Stop()

        flow._save_checkpoint = kill_after_first_round
        with pytest.raises(Stop):
            flow.run()

        with open(path) as handle:
            checkpoint = json.load(handle)
        assert checkpoint["stage"] == "global"
        assert checkpoint["detailed_partial"]["rounds_done"] == 1

        resumed = self._flow(
            workers=2, checkpoint_path=path, resume=True
        ).run()
        assert resumed.failure_report.resumed_from == "global+round1"
        assert resumed.metrics.netlength == baseline.metrics.netlength
        assert resumed.metrics.vias == baseline.metrics.vias
        assert (
            resumed.detailed_result.routed == baseline.detailed_result.routed
        )


@needs_fork
class TestCliWorkers:
    def test_route_accepts_workers_flag(self, tmp_path):
        from repro.__main__ import main

        chip_path = str(tmp_path / "chip.txt")
        routes_path = str(tmp_path / "routes.txt")
        assert main([
            "generate", chip_path, "--rows", "2", "--cells", "4",
            "--nets", "4", "--seed", "2",
        ]) == 0
        assert main([
            "route", chip_path, routes_path, "--gr-phases", "6",
            "--no-cleanup", "--workers", "2", "--region-timeout", "30",
        ]) == 0
        assert open(routes_path).read().startswith("ROUTES")


@needs_fork
class TestFaultParity:
    def test_transient_fault_fires_identically_at_any_worker_count(self):
        victim = round_zero_victim()
        plan_kwargs = dict(nets=[victim], kind="raise")
        serial, serial_routes, serial_inj = run_router(
            1, fault_plan=FaultPlan([FaultSpec("path_search", **plan_kwargs)], seed=9)
        )
        par, par_routes, par_inj = run_router(
            2, fault_plan=FaultPlan([FaultSpec("path_search", **plan_kwargs)], seed=9)
        )
        assert [f[:2] for f in par_inj.fired] == [f[:2] for f in serial_inj.fired]
        assert par.routed == serial.routed
        assert par.failed == serial.failed
        assert par_routes == serial_routes


@needs_fork
class TestMetricRepatriation:
    """Worker counters/gauges/histograms must fold back into the parent."""

    def _routing_metrics(self):
        from repro.obs import OBS

        counters = {
            name: value
            for name, value in OBS.counters.items()
            if name.startswith(("pathsearch.", "droute."))
        }
        histograms = {
            name: (histogram.count, histogram.total)
            for name, histogram in OBS.histograms.items()
            if name == "pathsearch.labels_per_search"
        }
        return counters, histograms

    def test_parallel_histogram_and_counter_totals_match_serial(self):
        from repro.obs import OBS

        OBS.reset()
        OBS.configure(enabled=True)
        try:
            serial, _, _ = run_router(1)
            serial_counters, serial_histograms = self._routing_metrics()

            OBS.reset()
            OBS.configure(enabled=True)
            parallel, _, _ = run_router(2)
            parallel_counters, parallel_histograms = self._routing_metrics()
            parallel_gauges = dict(OBS.gauges)
        finally:
            OBS.reset()
            OBS.enabled = False

        assert serial.routed == parallel.routed
        # Merge conflicts would re-route nets in the parent and
        # double-count work; the healthy-run premise of this parity
        # check is conflict-free merging.
        assert parallel_counters.get("pool.merge_conflicts", 0) == 0
        assert serial_histograms["pathsearch.labels_per_search"][0] > 0
        assert parallel_histograms == serial_histograms
        assert parallel_counters == serial_counters
        # Gauges repatriate too: workers publish resource telemetry the
        # serial path never sets, and it must survive the merge.
        assert parallel_gauges.get("resource.rss_bytes", 0) > 0
        assert (
            parallel_gauges.get("resource.rss_peak_bytes", 0)
            >= parallel_gauges.get("resource.rss_bytes", 0)
        )
