"""Unit, integration and property tests for the BonnRoute reproduction.

Run with ``PYTHONPATH=src python -m pytest -x -q`` (the tier-1 gate).
"""
