"""Tests for the CLI entry point and the parallel-sharing simulation."""

import pytest

from repro.__main__ import main
from repro.chip.generator import ChipSpec, generate_chip
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.resources import ResourceModel
from repro.groute.sharing import (
    ResourceSharingSolver,
    solve_parallel_simulated,
)


class TestCli:
    def test_generate_and_route(self, tmp_path):
        chip_path = str(tmp_path / "chip.txt")
        routes_path = str(tmp_path / "routes.txt")
        assert main([
            "generate", chip_path, "--rows", "2", "--cells", "4",
            "--nets", "4", "--seed", "2",
        ]) == 0
        assert main([
            "route", chip_path, routes_path, "--gr-phases", "6",
            "--no-cleanup",
        ]) == 0
        content = open(routes_path).read()
        assert content.startswith("ROUTES")
        assert "WIRE" in content

    def test_drc_command(self, tmp_path, capsys):
        chip_path = str(tmp_path / "chip.txt")
        routes_path = str(tmp_path / "routes.txt")
        main(["generate", chip_path, "--rows", "2", "--cells", "4",
              "--nets", "4", "--seed", "2"])
        main(["route", chip_path, routes_path, "--gr-phases", "6",
              "--no-cleanup"])
        capsys.readouterr()
        code = main(["drc", chip_path, routes_path])
        out = capsys.readouterr().out
        assert "errors:" in out
        assert code in (0, 1)

    def test_render_command(self, tmp_path, capsys):
        chip_path = str(tmp_path / "chip.txt")
        main(["generate", chip_path, "--rows", "2", "--cells", "4",
              "--nets", "4", "--seed", "2"])
        capsys.readouterr()
        assert main(["render", chip_path, "--layer", "1", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "layer M1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestParallelSharing:
    @pytest.fixture(scope="class")
    def setup(self):
        chip = generate_chip(
            ChipSpec("parsh", rows=3, row_width_cells=6, net_count=10, seed=7)
        )
        graph = GlobalRoutingGraph(chip)
        estimate_capacities(graph, build_track_plan(chip))
        for edge in list(graph.capacities):
            graph.capacities[edge] *= 0.4
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        model = ResourceModel(graph, chip.nets)
        return graph, model, routable

    def test_parallel_matches_serial_quality(self, setup):
        """Sec. 5.1: volatility-tolerant block solving keeps the guarantee.

        Stale price reads within a block must not degrade the congestion
        meaningfully compared to strictly serial updates.
        """
        graph, model, routable = setup
        serial = ResourceSharingSolver(
            graph, model, phases=10, reuse_threshold=1.0
        ).solve(routable)
        parallel = solve_parallel_simulated(
            graph, model, routable, threads=4, phases=10
        )
        assert parallel.max_congestion <= serial.max_congestion * 1.15

    def test_weights_are_distributions(self, setup):
        graph, model, routable = setup
        parallel = solve_parallel_simulated(
            graph, model, routable, threads=3, phases=6
        )
        for net in routable:
            weights = parallel.weights[net.name]
            assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_single_thread_equals_serial_structure(self, setup):
        graph, model, routable = setup
        one = solve_parallel_simulated(
            graph, model, routable, threads=1, phases=5
        )
        serial = ResourceSharingSolver(
            graph, model, phases=5, reuse_threshold=1.0
        ).solve(routable)
        # threads=1 applies updates net by net - identical to the serial
        # algorithm, so the fractional solutions must coincide.
        assert one.weights == serial.weights
