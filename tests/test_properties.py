"""Cross-module property tests: invariants the subsystems must share.

* shape grid == multiset semantics under random add/remove interleavings;
* blockage-grid shortest paths == brute-force BFS on the same grid;
* distance-rule checker cross-validation: a placement the checker calls
  legal never creates a spacing violation the DRC checker would flag;
* fast-grid invalidation: inserting then removing a net's wiring leaves
  every cached legality word identical to a freshly built grid.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.generator import ChipSpec, generate_chip
from repro.drc.checker import DrcChecker
from repro.droute.area import RoutingArea
from repro.droute.intervals import GraphView
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.grid.blockgrid import BlockageGrid
from repro.grid.fastgrid import pack_word, unpack_word
from repro.grid.shapegrid import ShapeGrid
from repro.droute.route import ViaInstance
from repro.tech.stacks import example_stack
from repro.tech.wiring import ShapeKind, StickFigure


class TestShapeGridMultiset:
    """The grid must behave as a multiset of shapes under add/remove."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 30),  # x cell
                st.integers(0, 30),  # y cell
                st.integers(1, 20),  # width cells-ish
                st.sampled_from(["a", "b", "c"]),
            ),
            min_size=1,
            max_size=12,
        ),
        st.data(),
    )
    def test_add_remove_random(self, shapes, data):
        grid = ShapeGrid(Rect(0, 0, 8000, 8000), example_stack(4))
        live = []
        for x, y, w, net in shapes:
            rect = Rect(x * 80, y * 80, x * 80 + w * 40, y * 80 + 40)
            grid.add_shape("wiring", 1, rect, net, "c", ShapeKind.WIRE, 3, 40)
            live.append((rect, net))
        # Remove a random subset.
        to_remove = data.draw(
            st.lists(st.integers(0, len(live) - 1), unique=True, max_size=len(live))
        )
        for index in sorted(to_remove, reverse=True):
            rect, net = live.pop(index)
            grid.remove_shape("wiring", 1, rect, net, "c", ShapeKind.WIRE, 3, 40)
        found = grid.query("wiring", 1, Rect(0, 0, 8000, 8000))
        # Every live shape must be reconstructible as the union of its
        # returned pieces; no pieces of removed shapes may remain.
        live_areas = {}
        for rect, net in live:
            live_areas[net] = live_areas.get(net, 0) + rect.area
        # Identical-metadata shapes are reference-counted in the cells
        # (multiset semantics), but queries report each distinct piece
        # once, so compare covered area per net through the union.
        from repro.geometry.polygon import rectilinear_area

        for net in ("a", "b", "c"):
            expected = rectilinear_area([r for r, n in live if n == net])
            got = rectilinear_area([e.rect for e in found if e.net == net])
            assert got == expected, f"net {net}: {got} != {expected}"

    def test_duplicate_add_remove_is_refcounted(self):
        """Identical shapes are reference-counted (documented multiset
        behaviour of the configuration table): adding the same rect twice
        and removing it once leaves one copy; removing it again leaves
        nothing."""
        grid = ShapeGrid(Rect(0, 0, 2000, 2000), example_stack(4))
        rect = Rect(100, 100, 300, 140)
        grid.add_shape("wiring", 1, rect, "n", "c", ShapeKind.WIRE, 3, 40)
        grid.add_shape("wiring", 1, rect, "n", "c", ShapeKind.WIRE, 3, 40)
        grid.remove_shape("wiring", 1, rect, "n", "c", ShapeKind.WIRE, 3, 40)
        remaining = grid.query("wiring", 1, Rect(0, 0, 2000, 2000))
        # One copy survives: its clipped pieces union back to the rect.
        from repro.geometry.polygon import rectilinear_area

        assert remaining
        assert Rect.bounding([e.rect for e in remaining]) == rect
        assert rectilinear_area([e.rect for e in remaining]) == rect.area
        grid.remove_shape("wiring", 1, rect, "n", "c", ShapeKind.WIRE, 3, 40)
        assert grid.query("wiring", 1, Rect(0, 0, 2000, 2000)) == []


class TestBlockageGridVsBruteForce:
    """tau=1 blockage-grid paths must equal BFS distances on its lattice."""

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 8),
                      st.integers(1, 3), st.integers(1, 3)),
            max_size=4,
        ),
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
    )
    def test_matches_dijkstra_on_lattice(self, obstacle_cells, s_cell, t_cell):
        scale = 40
        obstacles = [
            Rect(x * scale, y * scale, (x + w) * scale, (y + h) * scale)
            for x, y, w, h in obstacle_cells
        ]
        bbox = Rect(0, 0, 10 * scale, 10 * scale)
        source = (s_cell[0] * scale, s_cell[1] * scale)
        target = (t_cell[0] * scale, t_cell[1] * scale)

        def inside_obstacle(point):
            return any(
                o.x_lo < point[0] < o.x_hi and o.y_lo < point[1] < o.y_hi
                for o in obstacles
            )

        if inside_obstacle(source) or inside_obstacle(target):
            return
        grid = BlockageGrid(obstacles, 1, bbox, [source, target])
        result = grid.shortest_path([source], [target])

        # Brute force Dijkstra over the same refined lattice.
        import heapq

        xs, ys = grid.xs, grid.ys
        xi = {x: i for i, x in enumerate(xs)}
        yi = {y: j for j, y in enumerate(ys)}
        start = (xi[source[0]], yi[source[1]])
        goal = (xi[target[0]], yi[target[1]])
        dist = {start: 0}
        heap = [(0, start)]
        best = None
        while heap:
            d, (i, j) = heapq.heappop(heap)
            if (i, j) == goal:
                best = d
                break
            if d > dist.get((i, j), 1 << 60):
                continue
            moves = []
            if i + 1 < len(xs) and grid._h_edge_free(i, j):
                moves.append(((i + 1, j), xs[i + 1] - xs[i]))
            if i > 0 and grid._h_edge_free(i - 1, j):
                moves.append(((i - 1, j), xs[i] - xs[i - 1]))
            if j + 1 < len(ys) and grid._v_edge_free(i, j):
                moves.append(((i, j + 1), ys[j + 1] - ys[j]))
            if j > 0 and grid._v_edge_free(i, j - 1):
                moves.append(((i, j - 1), ys[j] - ys[j - 1]))
            for (ni, nj), cost in moves:
                if (ni, nj) in grid.vertex_blocked:
                    continue
                nd = d + cost
                if nd < dist.get((ni, nj), 1 << 60):
                    dist[(ni, nj)] = nd
                    heapq.heappush(heap, (nd, (ni, nj)))
        if result is None:
            assert best is None
        else:
            assert best is not None
            assert result[0] == best


class TestCheckerDrcConsistency:
    """A checker-approved placement must not create DRC spacing errors."""

    def test_legal_placements_stay_clean(self):
        chip = generate_chip(
            ChipSpec("propchk", rows=2, row_width_cells=4, net_count=4, seed=2)
        )
        space = RoutingSpace(chip)
        rng = random.Random(13)
        graph = space.graph
        placed = 0
        for _ in range(60):
            z = rng.choice(chip.stack.indices)
            tracks = graph.tracks[z]
            crosses = graph.crosses[z]
            if len(tracks) < 2 or len(crosses) < 4:
                continue
            t = rng.randrange(len(tracks))
            c0 = rng.randrange(len(crosses) - 3)
            v0 = graph.position((z, t, c0))
            v1 = graph.position((z, t, c0 + rng.randrange(1, 4)))
            stick = StickFigure(z, v0[0], v0[1], v1[0], v1[1])
            net = f"prop{placed}"
            if space.check_wire("default", stick, net).legal:
                space.add_wire(net, "default", stick)
                placed += 1
        assert placed >= 10, "expected to place a fair number of wires"
        report = DrcChecker(space).run(same_net=False, opens=False)
        prop_violations = [
            v for v in report.violations
            if any(n and str(n).startswith("prop") for n in v.nets)
        ]
        assert prop_violations == [], (
            f"checker-approved wires violated spacing: {prop_violations[:5]}"
        )


class TestFastGridInsertRemoveRoundTrip:
    """Insert-then-remove wiring must restore every fast-grid word.

    Words are cached lazily and dropped by ``invalidate_region`` on every
    insertion and removal (including the ``off_track`` dirty-bit path),
    so a net that is fully ripped out again must leave ``word()``
    indistinguishable from a freshly built grid on the same chip.  The
    probes are re-queried between operations so a stale cache entry
    cannot hide behind lazy recomputation.
    """

    @settings(max_examples=12, deadline=None)
    @given(st.data())
    def test_words_match_fresh_grid(self, data):
        chip = generate_chip(
            ChipSpec("fgprop", rows=2, row_width_cells=4, net_count=4, seed=3)
        )
        space = RoutingSpace(chip)
        graph = space.graph
        fast = space.fast_grid

        def draw_vertex(z):
            t = data.draw(st.integers(0, len(graph.tracks[z]) - 1))
            c = data.draw(st.integers(0, len(graph.crosses[z]) - 1))
            return (z, t, c)

        probes = []
        for z in chip.stack.indices:
            probes.append(draw_vertex(z))
            probes.append(draw_vertex(z))

        net = "fgprop_net"
        op_specs = data.draw(
            st.lists(
                st.tuples(st.sampled_from(["wire", "via"]), st.booleans()),
                min_size=1,
                max_size=8,
            )
        )
        for kind, off_track in op_specs:
            if kind == "wire":
                z = data.draw(st.sampled_from(chip.stack.indices))
                crosses = graph.crosses[z]
                t = data.draw(st.integers(0, len(graph.tracks[z]) - 1))
                c0 = data.draw(st.integers(0, len(crosses) - 2))
                c1 = data.draw(
                    st.integers(c0 + 1, min(c0 + 4, len(crosses) - 1))
                )
                x0, y0, _ = graph.position((z, t, c0))
                x1, y1, _ = graph.position((z, t, c1))
                if off_track:
                    # Shift perpendicular to the track so the wire sits
                    # between tracks, exercising the dirty-bit path.
                    shift = max(1, chip.stack[z].pitch // 3)
                    if x0 == x1:
                        x0, x1 = x0 + shift, x1 + shift
                    else:
                        y0, y1 = y0 + shift, y1 + shift
                space.add_wire(
                    net, "default", StickFigure(z, x0, y0, x1, y1),
                    off_track=off_track,
                )
            else:
                via_layer = data.draw(st.sampled_from(chip.stack.via_layers()))
                x, y, _ = graph.position(draw_vertex(via_layer))
                if off_track:
                    x += max(1, chip.stack[via_layer].pitch // 3)
                space.add_via(
                    net, "default", ViaInstance(via_layer, x, y),
                    off_track=off_track,
                )
            # Query between operations so stale entries are observable.
            for vertex in probes:
                fast.word("default", vertex)

        space.remove_net_route(net)

        fresh = RoutingSpace(chip)
        for vertex in probes:
            assert fast.word("default", vertex) == fresh.fast_grid.word(
                "default", vertex
            ), f"stale word at {vertex} after insert/remove round-trip"


def _soup_ops(chip, rng, count=12):
    """A reproducible random wire soup (some off-track, mixed ripup)."""
    graph = chip_graph = None
    space = RoutingSpace(chip)  # only for track geometry
    graph = space.graph
    ops = []
    for i in range(count):
        z = rng.choice(chip.stack.indices)
        tracks, crosses = graph.tracks[z], graph.crosses[z]
        if len(tracks) < 2 or len(crosses) < 5:
            continue
        t = rng.randrange(len(tracks))
        c0 = rng.randrange(len(crosses) - 4)
        x0, y0, _ = graph.position((z, t, c0))
        x1, y1, _ = graph.position((z, t, c0 + rng.randrange(1, 4)))
        off_track = rng.random() < 0.3
        if off_track:
            shift = max(1, chip.stack[z].pitch // 3)
            if x0 == x1:
                x0, x1 = x0 + shift, x1 + shift
            else:
                y0, y1 = y0 + shift, y1 + shift
        ops.append((f"soup{i}", z, x0, y0, x1, y1, rng.choice((1, 2, 3)),
                    off_track))
    return ops


def _apply_soup(space, ops):
    for net, z, x0, y0, x1, y1, level, off_track in ops:
        space.add_wire(
            net, "default", StickFigure(z, x0, y0, x1, y1),
            ripup_level=level, off_track=off_track,
        )


class TestPackedWordsMatchScalar:
    """The numpy-packed word path must equal the scalar fallback exactly.

    Both grids store the same uint16 encoding; on identical shape soups
    every word (and its pack/unpack round trip against a fresh
    ``_compute_word``) must agree bit for bit.
    """

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_words_equal_on_random_soup(self, seed):
        chip = generate_chip(
            ChipSpec("vecprop", rows=2, row_width_cells=4, net_count=4, seed=4)
        )
        rng = random.Random(seed)
        ops = _soup_ops(chip, rng)
        vec = RoutingSpace(chip, fast_grid_vectorized=True)
        scal = RoutingSpace(chip, fast_grid_vectorized=False)
        assert vec.fast_grid.vectorized or scal.fast_grid.vectorized is False
        _apply_soup(vec, ops)
        _apply_soup(scal, ops)
        graph = vec.graph
        for _ in range(30):
            z = rng.choice(chip.stack.indices)
            t = rng.randrange(len(graph.tracks[z]))
            c = rng.randrange(len(graph.crosses[z]))
            vertex = (z, t, c)
            w_vec = vec.fast_grid.word("default", vertex)
            w_scal = scal.fast_grid.word("default", vertex)
            assert w_vec == w_scal, f"packed != scalar at {vertex}"
            fresh = vec.fast_grid._compute_word(
                vec.fast_grid.wire_types["default"], vertex
            )
            assert w_vec == fresh, f"cached != fresh at {vertex}"
            assert unpack_word(pack_word(fresh)) == fresh

    def test_batch_fill_equals_single_lookups(self):
        chip = generate_chip(
            ChipSpec("vecbatch", rows=2, row_width_cells=4, net_count=4, seed=4)
        )
        ops = _soup_ops(chip, random.Random(7))
        batch = RoutingSpace(chip, fast_grid_vectorized=True)
        single = RoutingSpace(chip, fast_grid_vectorized=True)
        _apply_soup(batch, ops)
        _apply_soup(single, ops)
        z, t = 3, 1
        hi = len(batch.graph.crosses[z]) - 1
        batch.fast_grid.ensure_words("default", z, t, 0, hi)
        for c in range(hi + 1):
            assert batch.fast_grid.cached_word("default", z, t, c) == (
                single.fast_grid.word("default", (z, t, c))
            )


def _reference_runs(fast, type_name, z, t, ranges, ripup_level, forced):
    """The pre-vectorization per-vertex decomposition, as an oracle."""
    runs = []
    for c_lo, c_hi in ranges:
        run_start = None
        for c in range(c_lo, c_hi + 1):
            vertex = (z, t, c)
            if vertex in forced:
                usable, needs_ripup = True, False
            elif fast.vertex_usable(type_name, vertex, "wire"):
                usable, needs_ripup = True, False
            elif ripup_level >= 0 and fast.vertex_usable(
                type_name, vertex, "wire", ripup_level
            ):
                usable, needs_ripup = True, True
            else:
                usable, needs_ripup = False, False
            if usable and not needs_ripup:
                if run_start is None:
                    run_start = c
                continue
            if run_start is not None:
                runs.append((run_start, c - 1, False))
                run_start = None
            if usable and needs_ripup:
                runs.append((c, c, True))
        if run_start is not None:
            runs.append((run_start, c_hi, False))
    return runs


class TestScannedIntervalsMatchPerVertex:
    """Word-level interval scans must equal the per-vertex decomposition.

    ``scan_track_runs`` (numpy diff over packed words, or its scalar
    twin) and the GraphView materialization on top of it must reproduce
    the old per-vertex loop exactly — same run boundaries, same ripup
    singletons — on random soups, with and without forced vertices.
    """

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_runs_match_reference(self, seed):
        chip = generate_chip(
            ChipSpec("scanprop", rows=2, row_width_cells=4, net_count=4, seed=4)
        )
        rng = random.Random(seed)
        ops = _soup_ops(chip, rng)
        for vectorized in (True, False):
            space = RoutingSpace(chip, fast_grid_vectorized=vectorized)
            _apply_soup(space, ops)
            fast = space.fast_grid
            graph = space.graph
            area = RoutingArea.everywhere()
            for _ in range(10):
                z = rng.choice(chip.stack.indices)
                t = rng.randrange(len(graph.tracks[z]))
                ripup = rng.choice((-2, 1, 3))
                forced = set()
                if rng.random() < 0.5:
                    forced.add((z, t, rng.randrange(len(graph.crosses[z]))))
                ranges = tuple(area.cross_ranges(graph, z, t))
                expected = _reference_runs(
                    fast, "default", z, t, ranges, ripup, forced
                )
                got = fast.scan_track_runs(
                    "default", z, t, ranges, ripup,
                    {v[2] for v in forced} or None,
                )
                assert got == expected, (
                    f"scan != per-vertex at z={z} t={t} ripup={ripup} "
                    f"forced={forced} (vectorized={vectorized})"
                )
                # The view's materialized intervals agree too (and the
                # cross-search cache returns the same runs on a rebuild).
                for _round in range(2):
                    view = GraphView(
                        space, "default", area, ripup_level=ripup,
                        forced_vertices=forced,
                    )
                    made = [
                        (iv.c_lo, iv.c_hi, iv.needs_ripup)
                        for _c, idx in view.track_intervals(z, t)
                        for iv in [view.interval(idx)]
                    ]
                    assert made == expected
