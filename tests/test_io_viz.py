"""Tests for the text interchange format and the ASCII visualization."""

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.route import NetRoute, ViaInstance
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace
from repro.io.textformat import (
    FormatError,
    dump_chip,
    dump_routes,
    load_chip,
    load_routes,
    read_chip_file,
    read_routes_file,
    write_chip_file,
    write_routes_file,
)
from repro.tech.wiring import StickFigure
from repro.viz import render_layer, render_summary


@pytest.fixture(scope="module")
def chip():
    return generate_chip(ChipSpec("iotest", rows=2, row_width_cells=4, net_count=4, seed=2))


@pytest.fixture(scope="module")
def routed_space(chip):
    space = RoutingSpace(chip)
    DetailedRouter(space).run()
    return space


class TestChipFormat:
    def test_roundtrip_structure(self, chip):
        text = dump_chip(chip)
        loaded = load_chip(text)
        assert loaded.name == chip.name
        assert loaded.die == chip.die
        assert len(loaded.stack) == len(chip.stack)
        assert [n.name for n in loaded.nets] == [n.name for n in chip.nets]
        for old, new in zip(chip.nets, loaded.nets):
            assert old.wire_type == new.wire_type
            assert [p.name for p in old.pins] == [p.name for p in new.pins]
            for op, np_ in zip(old.pins, new.pins):
                assert op.shapes == np_.shapes

    def test_roundtrip_obstructions(self, chip):
        loaded = load_chip(dump_chip(chip))
        # Circuit obstructions become flat blockages: total fixed metal
        # per layer must match.
        def per_layer(c):
            totals = {}
            for layer, rect, _owner in c.obstruction_shapes():
                totals[layer] = totals.get(layer, 0) + rect.area
            return totals

        assert per_layer(loaded) == per_layer(chip)

    def test_loaded_chip_is_routable(self, chip):
        loaded = load_chip(dump_chip(chip))
        space = RoutingSpace(loaded)
        result = DetailedRouter(space).run()
        assert len(result.failed) == 0

    def test_file_helpers(self, chip, tmp_path):
        path = tmp_path / "chip.txt"
        write_chip_file(chip, str(path))
        loaded = read_chip_file(str(path))
        assert loaded.die == chip.die

    def test_malformed_rejected(self):
        with pytest.raises(FormatError):
            load_chip("CHIP broken DIE 0 0\n")
        with pytest.raises(FormatError):
            load_chip("FROBNICATE 1 2 3\nEND\n")
        with pytest.raises(FormatError):
            load_chip("END\n")  # no CHIP/LAYER lines

    def test_comments_and_blank_lines_ignored(self, chip):
        text = dump_chip(chip)
        noisy = "# header comment\n\n" + text.replace("\nNET", "\n# nets\nNET", 1)
        assert load_chip(noisy).name == chip.name


class TestRoutesFormat:
    def test_roundtrip(self, routed_space, chip):
        text = dump_routes(routed_space.routes, chip.name)
        loaded = load_routes(text)
        assert sorted(loaded) == sorted(routed_space.routes)
        for name, route in loaded.items():
            original = routed_space.routes[name]
            assert route.wires == original.wires
            assert route.vias == original.vias
            assert route.wire_levels == original.wire_levels
            assert route.wire_types == original.wire_types

    def test_mixed_wire_types_preserved(self):
        route = NetRoute("mixed", "wide")
        route.add_wire(StickFigure(1, 0, 0, 400, 0), 3, "default")
        route.add_wire(StickFigure(3, 0, 0, 400, 0), 3, "wide")
        route.add_via(ViaInstance(3, 200, 0), 3, "wide")
        loaded = load_routes(dump_routes({"mixed": route}))
        assert loaded["mixed"].wire_types == ["default", "wide"]
        assert loaded["mixed"].via_types == ["wide"]

    def test_file_helpers(self, routed_space, chip, tmp_path):
        path = tmp_path / "routes.txt"
        write_routes_file(routed_space.routes, str(path), chip.name)
        loaded = read_routes_file(str(path))
        assert sorted(loaded) == sorted(routed_space.routes)

    def test_wire_without_route_rejected(self):
        with pytest.raises(FormatError):
            load_routes("WIRE ghost 1 0 0 10 0 3 default\n")


class TestViz:
    def test_render_contains_blockages_and_pins(self, chip):
        # Pins are visible on an unrouted space (wiring paints over them).
        space = RoutingSpace(chip)
        art = render_layer(space, 1, width=80)
        assert "#" in art  # power rails / obstructions
        assert "P" in art  # pins

    def test_render_contains_wires(self, routed_space):
        arts = [render_layer(routed_space, z, width=80) for z in (2, 3, 4)]
        assert any(
            any(g in art for g in "abcdefghij") for art in arts
        ), "routed wires should appear on some layer"

    def test_render_no_shorts(self, routed_space):
        # '*' marks overlapping wires of different nets.
        for z in routed_space.chip.stack.indices:
            art = render_layer(routed_space, z, width=120)
            assert "*" not in art, f"diff-net overlap rendered on M{z}"

    def test_summary_covers_all_layers(self, routed_space):
        summary = render_summary(routed_space, width=40)
        for z in routed_space.chip.stack.indices:
            assert f"layer M{z}" in summary

    def test_window_restriction(self, routed_space):
        from repro.geometry.rect import Rect

        art = render_layer(
            routed_space, 1, width=40, window=Rect(0, 0, 800, 800)
        )
        assert "window=(0, 0, 800, 800)" in art
