"""Run the documented examples of the path-search stack as tests.

The module docstrings of ``droute.pathsearch`` and ``droute.future_cost``
carry runnable examples (kernel equivalence, future-cost admissibility);
executing them in CI keeps the documentation honest.
"""

import doctest

import repro.droute.future_cost
import repro.droute.pathsearch


def _run(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0, f"{module.__name__} doctests failed"


def test_pathsearch_doctests():
    _run(repro.droute.pathsearch)


def test_future_cost_doctests():
    _run(repro.droute.future_cost)
