"""Tests for RoutingArea and the GraphView interval decomposition."""

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.area import RoutingArea
from repro.droute.intervals import GraphView
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.tech.wiring import StickFigure


@pytest.fixture(scope="module")
def space():
    return RoutingSpace(
        generate_chip(ChipSpec("avtest", rows=2, row_width_cells=4, net_count=4, seed=2))
    )


class TestRoutingArea:
    def test_everywhere_contains_all(self, space):
        area = RoutingArea.everywhere()
        assert area.contains(0, 0, 1)
        assert area.contains(10**6, -5, 3)
        assert area.allows_layer(99)

    def test_boxes_respected(self):
        area = RoutingArea.from_boxes([(2, Rect(0, 0, 100, 100))])
        assert area.contains(50, 50, 2)
        assert not area.contains(150, 50, 2)
        assert not area.contains(50, 50, 3)
        assert area.allows_layer(2)
        assert not area.allows_layer(3)

    def test_expanded(self):
        area = RoutingArea.from_boxes([(2, Rect(0, 0, 100, 100))])
        grown = area.expanded(50)
        assert grown.contains(140, 140, 2)
        assert not grown.contains(200, 200, 2)
        # everywhere stays everywhere
        assert RoutingArea.everywhere().expanded(10).contains(5, 5, 1)

    def test_cross_ranges_merge_overlaps(self, space):
        graph = space.graph
        z = 3
        y = graph.tracks[z][1]
        area = RoutingArea.from_boxes([
            (z, Rect(0, y - 10, 1000, y + 10)),
            (z, Rect(800, y - 10, 2000, y + 10)),
        ])
        ranges = area.cross_ranges(graph, z, 1)
        assert len(ranges) == 1, f"overlapping boxes must merge: {ranges}"

    def test_cross_ranges_disjoint(self, space):
        graph = space.graph
        z = 3
        y = graph.tracks[z][1]
        area = RoutingArea.from_boxes([
            (z, Rect(0, y - 10, 500, y + 10)),
            (z, Rect(2000, y - 10, 2500, y + 10)),
        ])
        ranges = area.cross_ranges(graph, z, 1)
        assert len(ranges) == 2

    def test_track_indices_filtered(self, space):
        graph = space.graph
        z = 3
        y = graph.tracks[z][2]
        area = RoutingArea.from_boxes([(z, Rect(0, y - 1, 4000, y + 1))])
        assert area.track_indices(graph, z) == [2]


class TestGraphViewIntervals:
    def test_clean_track_single_interval(self, space):
        view = GraphView(space, "default", RoutingArea.everywhere())
        z = 5  # clean thick layer
        runs = view.track_intervals(z, 2)
        assert len(runs) == 1
        interval = view.interval(runs[0][1])
        assert interval.c_lo == 0
        assert interval.c_hi == len(space.graph.crosses[z]) - 1

    def test_blocked_track_splits(self):
        space = RoutingSpace(
            generate_chip(ChipSpec("avsplit", rows=2, row_width_cells=4, net_count=4, seed=2))
        )
        graph = space.graph
        z, t = 5, 2
        y = graph.tracks[z][t]
        x_lo, _, _ = graph.position((z, t, 3))
        x_hi, _, _ = graph.position((z, t, 5))
        space.add_wire("blk", "default", StickFigure(z, x_lo, y, x_hi, y))
        view = GraphView(space, "default", RoutingArea.everywhere())
        runs = view.track_intervals(z, t)
        assert len(runs) >= 2, "a foreign wire must split the track run"
        covered = set()
        for _c_lo, index in runs:
            interval = view.interval(index)
            covered.update(range(interval.c_lo, interval.c_hi + 1))
        blocked = set(range(3, 6))
        assert not (covered & blocked)

    def test_ripup_singletons(self):
        space = RoutingSpace(
            generate_chip(ChipSpec("avrip", rows=2, row_width_cells=4, net_count=4, seed=2))
        )
        graph = space.graph
        z, t = 5, 2
        y = graph.tracks[z][t]
        x_lo, _, _ = graph.position((z, t, 3))
        x_hi, _, _ = graph.position((z, t, 4))
        space.add_wire("soft", "default", StickFigure(z, x_lo, y, x_hi, y))
        view = GraphView(
            space, "default", RoutingArea.everywhere(),
            ripup_level=3, ripup_base_penalty=100,
        )
        runs = view.track_intervals(z, t)
        singles = [
            view.interval(i) for _c, i in runs if view.interval(i).needs_ripup
        ]
        assert singles, "rippable vertices must become singleton intervals"
        for interval in singles:
            assert len(interval) == 1
            assert interval.penalty >= 100

    def test_interval_at_none_outside_area(self, space):
        graph = space.graph
        z = 3
        y = graph.tracks[z][1]
        area = RoutingArea.from_boxes([(z, Rect(0, y - 1, 400, y + 1))])
        view = GraphView(space, "default", area)
        inside = view.interval_at((z, 1, 0))
        far = view.interval_at((z, 1, len(graph.crosses[z]) - 1))
        assert inside is not None
        assert far is None

    def test_wide_type_escapes_on_lower_layers(self, space):
        view = GraphView(space, "wide", RoutingArea.everywhere())
        assert view.type_for_layer(1) == "default"  # escape wiring
        assert view.type_for_layer(4) == "wide"
        assert view.type_for_via(1) == "default"
        assert view.type_for_via(4) == "wide"
