"""Tests for off-track pin access (Sec. 4.3, Fig. 7)."""

import pytest

from repro.chip.cells import CellTemplate, CircuitInstance
from repro.chip.design import Chip
from repro.chip.generator import ChipSpec, generate_chip
from repro.chip.net import Net, Pin
from repro.droute.pinaccess import AccessPath, PinAccessPlanner
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.grid.blockgrid import min_segment_length
from repro.tech.stacks import example_rules, example_stack, example_wiretypes


@pytest.fixture(scope="module")
def space():
    spec = ChipSpec("patest", rows=2, row_width_cells=5, net_count=6, seed=11)
    return RoutingSpace(generate_chip(spec))


class TestCatalogue:
    def test_catalogue_nonempty_for_typical_pin(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[0].pins[0]
        paths = planner.build_catalogue(pin)
        assert paths, "typical pin should have access paths"

    def test_paths_start_at_pin_and_end_on_track(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[0].pins[0]
        for path in planner.build_catalogue(pin):
            assert path.points[0] == pin.reference_point()
            ex, ey, ez = space.graph.position(path.endpoint)
            assert path.points[-1] == (ex, ey)
            if path.via is not None:
                assert (path.via.x, path.via.y) == (ex, ey)
                assert ez == path.layer + 1

    def test_paths_respect_tau(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[0].pins[0]
        tau = space.chip.rules.same_net_rules(1).min_segment_length
        for path in planner.build_catalogue(pin):
            if len(path.points) > 1:
                assert min_segment_length(path.points) >= tau

    def test_paths_sorted_by_length(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[0].pins[1]
        paths = planner.build_catalogue(pin)
        lengths = [p.length for p in paths]
        assert lengths == sorted(lengths)

    def test_sticks_cover_polyline(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[0].pins[0]
        for path in planner.build_catalogue(pin):
            sticks = path.sticks()
            total = sum(s.length for s in sticks)
            assert total == sum(
                abs(a[0] - b[0]) + abs(a[1] - b[1])
                for a, b in zip(path.points, path.points[1:])
            )


class TestConflictFreeSolution:
    def _planner_and_catalogues(self, space):
        planner = PinAccessPlanner(space)
        by_circuit = {}
        for net in space.chip.nets:
            for pin in net.pins:
                by_circuit.setdefault(pin.circuit_id, []).append(pin)
        circuits = {c.instance_id: c for c in space.chip.circuits}
        cid, pins = next(
            (cid, pins) for cid, pins in sorted(by_circuit.items())
            if len(pins) >= 2
        )
        return planner, planner.circuit_catalogues(circuits[cid], pins)

    def test_solution_is_conflict_free(self, space):
        planner, catalogues = self._planner_and_catalogues(space)
        solution = planner.conflict_free_solution(catalogues)
        assert solution is not None
        chosen = list(solution.values())
        for i, a in enumerate(chosen):
            for b in chosen[i + 1:]:
                assert not planner.paths_conflict(a, b)

    def test_coverage_first(self, space):
        """The B&B prefers assigning more pins over shorter paths."""
        planner, catalogues = self._planner_and_catalogues(space)
        solution = planner.conflict_free_solution(catalogues)
        covered = len(solution)
        nonempty = sum(1 for paths in catalogues.values() if paths)
        # Every pin with a catalogue should be covered here (fresh space).
        assert covered == nonempty

    def test_empty_catalogues_give_none(self, space):
        planner = PinAccessPlanner(space)
        assert planner.conflict_free_solution({}) is None
        assert planner.conflict_free_solution({"p": []}) is None

    def test_figure7_greedy_failure_avoided(self):
        """Fig. 7: three pins behind a blockage bar; a greedy first-fit
        choice can block the third pin, the B&B must not."""
        stack = example_stack(4)
        pitch = 80
        template = CellTemplate(
            "FIG7",
            width=10 * pitch,
            height=960,
            pins={
                "P1": [(1, Rect(150, 430, 190, 470))],
                "P2": [(1, Rect(390, 430, 430, 470))],
                "P3": [(1, Rect(630, 430, 670, 470))],
            },
            obstructions=[(1, Rect(60, 530, 740, 570))],
        )
        inst = CircuitInstance(0, template, 1000, 1000)
        pins = {
            name: Pin(f"0/{name}", inst.pin_shapes(name), circuit_id=0)
            for name in ("P1", "P2", "P3")
        }
        nets = [
            Net("a", [pins["P1"], Pin("x", [(1, Rect(4000, 1000, 4040, 1040))])]),
            Net("b", [pins["P2"], Pin("y", [(1, Rect(4000, 2000, 4040, 2040))])]),
            Net("c", [pins["P3"], Pin("z", [(1, Rect(4000, 3000, 4040, 3040))])]),
        ]
        chip = Chip(
            "fig7", Rect(0, 0, 6000, 6000), stack, example_rules(4),
            example_wiretypes(stack), circuits=[inst], nets=nets,
        )
        space = RoutingSpace(chip)
        planner = PinAccessPlanner(space)
        catalogues = planner.circuit_catalogues(inst, list(pins.values()))
        assert all(catalogues[f"0/{n}"] for n in ("P1", "P2", "P3"))
        solution = planner.conflict_free_solution(catalogues)
        assert solution is not None
        assert len(solution) == 3, "all three pins must get access paths"


class TestClassCache:
    def test_identical_instances_hit_cache(self):
        spec = ChipSpec("pacache", rows=2, row_width_cells=6, net_count=8, seed=21)
        space = RoutingSpace(generate_chip(spec))
        planner = PinAccessPlanner(space)
        by_circuit = {}
        for net in space.chip.nets:
            for pin in net.pins:
                by_circuit.setdefault(pin.circuit_id, []).append(pin)
        circuits = {c.instance_id: c for c in space.chip.circuits}
        for cid, pins in sorted(by_circuit.items()):
            planner.circuit_catalogues(circuits[cid], pins)
        assert planner.cache_misses > 0
        # With few templates and repeated geometry, some hits must occur.
        total = planner.cache_hits + planner.cache_misses
        assert total == len(by_circuit)


class TestReservation:
    def test_reserve_adds_shapes(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[1].pins[0]
        paths = planner.build_catalogue(pin)
        assert paths
        before = space.shape_grid.total_interval_count()
        planner.reserve(paths[0])
        assert space.shape_grid.total_interval_count() >= before
        route = space.routes[paths[0].net_name]
        assert route.wires or route.vias
