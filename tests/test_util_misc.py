"""Tests for union-find and seeded RNG helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import make_rng, sample_distinct, weighted_choice
from repro.util.unionfind import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.component_count == 3
        assert not uf.connected("a", "b")

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.component_count == 1

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert not uf.union(1, 2)
        assert uf.component_count == 1

    def test_transitive(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_lazy_add_on_find(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_components(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(sorted(g) for g in uf.components())
        assert groups == [[0, 1], [2, 3], [4]]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20))))
    def test_component_count_invariant(self, pairs):
        uf = UnionFind(range(21))
        merges = 0
        for a, b in pairs:
            if uf.union(a, b):
                merges += 1
        assert uf.component_count == 21 - merges


class TestRng:
    def test_deterministic_default(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_seed_changes_stream(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_weighted_choice_respects_zero_weights(self):
        rng = make_rng(3)
        for _ in range(50):
            assert weighted_choice(rng, [0.0, 1.0, 0.0]) == 1

    def test_weighted_choice_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [0.0, 0.0])

    def test_weighted_choice_distribution(self):
        rng = make_rng(4)
        counts = [0, 0]
        for _ in range(2000):
            counts[weighted_choice(rng, [1.0, 3.0])] += 1
        assert 0.2 < counts[0] / 2000 < 0.3

    def test_sample_distinct(self):
        rng = make_rng(5)
        sample = sample_distinct(rng, 100, 10)
        assert len(set(sample)) == 10
        assert sample == sorted(sample)
        assert all(0 <= x < 100 for x in sample)

    def test_sample_distinct_too_many(self):
        with pytest.raises(ValueError):
            sample_distinct(make_rng(0), 3, 5)
