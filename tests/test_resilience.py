"""Tests for the fault-tolerant runtime (deadlines, ladder, checkpoints).

Covers the resilience building blocks in isolation and their integration
into the detailed router and the BonnRoute flow:

* escalation-ladder order and rung parameters;
* retry exhaustion producing a structured ``NetFailure`` (no exception);
* deadline expiry mid-search leaving the routing space consistent;
* checkpoint -> kill -> resume producing the same metrics as an
  uninterrupted run with the same seed.
"""

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.flow.bonnroute import BonnRouteFlow
from repro.flow.faults import FaultPlan, FaultSpec
from repro.flow.resilience import (
    Deadline,
    DeadlineExceeded,
    EscalationRung,
    NetFailure,
    NetRetryPolicy,
    FlowFailureReport,
    REASON_EXCEPTION,
    REASON_RETRIES_EXHAUSTED,
    escalation_ladder,
)
from repro.grid.shapegrid import RipupLevel
from repro.io.checkpoint import load_checkpoint


def _chip(name="resil", nets=6, seed=3):
    return generate_chip(
        ChipSpec(name, rows=2, row_width_cells=5, net_count=nets, seed=seed)
    )


class TestDeadline:
    def test_never_expires_without_budget(self):
        deadline = Deadline(None)
        deadline.check()
        assert not deadline.expired
        assert deadline.remaining is None

    def test_expiry_with_fake_clock(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        deadline.check()
        now[0] = 4.9
        assert not deadline.expired
        now[0] = 5.1
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_soonest_picks_tightest(self):
        now = [0.0]
        short = Deadline(1.0, clock=lambda: now[0])
        long = Deadline(10.0, clock=lambda: now[0])
        assert Deadline.soonest(long, short) is short
        assert Deadline.soonest(None, long) is long
        assert Deadline.soonest(None, Deadline(None)) is None


class TestRetryPolicy:
    def test_bounded_attempts(self):
        policy = NetRetryPolicy(max_attempts=3)
        assert policy.allows(0) and policy.allows(2)
        assert not policy.allows(3)

    def test_deterministic_jitter(self):
        a = NetRetryPolicy(max_attempts=5, base_delay_s=0.01, seed=9,
                           sleep=lambda _s: None)
        b = NetRetryPolicy(max_attempts=5, base_delay_s=0.01, seed=9,
                           sleep=lambda _s: None)
        delays_a = [a.backoff(i) for i in range(1, 5)]
        delays_b = [b.backoff(i) for i in range(1, 5)]
        assert delays_a == delays_b
        assert a.applied_delays == delays_a

    def test_zero_base_delay_never_sleeps(self):
        slept = []
        policy = NetRetryPolicy(max_attempts=4, base_delay_s=0.0,
                                sleep=slept.append)
        policy.backoff(1)
        policy.backoff(2)
        assert slept == []
        assert policy.applied_delays == [0.0, 0.0]


class TestEscalationLadder:
    def test_rung_order(self):
        ladder = escalation_ladder(max_retry_rounds=2)
        assert [r.name for r in ladder] == [
            "baseline",
            "expanded_corridor_1",
            "expanded_corridor_2",
            "off_track",
            "isr_fallback",
        ]

    def test_rung_parameters_escalate(self):
        ladder = escalation_ladder(max_retry_rounds=2)
        baseline, exp1, exp2, off_track, isr = ladder
        assert baseline.ripup_level == -2
        assert exp1.ripup_level == int(RipupLevel.RESERVED)
        assert exp2.ripup_level == int(RipupLevel.NORMAL)
        assert exp1.corridor_expansion == 1
        assert exp2.corridor_expansion == 2
        # The degraded rungs drop the corridor and force off-track access.
        assert off_track.corridor_expansion is None
        assert off_track.force_off_track_access
        assert off_track.engine == "interval"
        assert isr.engine == "isr"
        assert isr.force_off_track_access

    def test_ladder_scales_with_retry_rounds(self):
        assert len(escalation_ladder(max_retry_rounds=1)) == 4
        assert len(escalation_ladder(max_retry_rounds=3)) == 6


class TestNetFailure:
    def test_round_trip(self):
        failure = NetFailure(
            "n1", "detailed", REASON_EXCEPTION, attempts=3,
            rungs_tried=["baseline", "off_track"], error="boom",
            open_connections=1,
        )
        assert NetFailure.from_dict(failure.as_dict()).as_dict() == failure.as_dict()

    def test_report_histogram_and_recovery(self):
        report = FlowFailureReport()
        report.record_failure(NetFailure("a", "detailed", REASON_EXCEPTION))
        report.record_failure(
            NetFailure("b", "detailed", REASON_RETRIES_EXHAUSTED)
        )
        report.record_failure(NetFailure("c", "detailed", REASON_EXCEPTION))
        assert report.reasons_histogram() == {
            REASON_EXCEPTION: 2, REASON_RETRIES_EXHAUSTED: 1,
        }
        report.record_recovery("a", "off_track")
        assert "a" not in report.net_failures
        assert report.recovered_nets == {"a": "off_track"}


class TestRetryExhaustion:
    def test_persistent_fault_yields_net_failure_not_exception(self):
        """A net whose interval search always faults must come out as a
        structured failure or an isr_fallback recovery - never a raise."""
        chip = _chip("exhaust", nets=6, seed=3)
        victim = chip.nets[0].name
        plan = FaultPlan(
            [FaultSpec("path_search", nets=[victim], fires_per_net=None)],
            seed=1,
        )
        result = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, fault_plan=plan
        ).run()
        detailed = result.detailed_result
        if victim in detailed.failed:
            failure = detailed.failures[victim]
            assert failure.reason in ("exception", "unroutable")
            assert failure.attempts >= 1
            assert "baseline" in failure.rungs_tried
            assert victim in result.failure_report.net_failures
        else:
            # The node-search fallback engine survives interval faults.
            assert detailed.recovered.get(victim) == "isr_fallback"

    def test_failures_reach_flow_metrics(self):
        chip = _chip("metrics", nets=6, seed=3)
        victim = chip.nets[0].name
        plan = FaultPlan(
            [
                FaultSpec("path_search", nets=[victim], fires_per_net=None),
                FaultSpec("pin_access", nets=[victim], fires_per_net=None),
            ],
            seed=1,
        )
        result = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, fault_plan=plan
        ).run()
        metrics = result.metrics.as_dict()
        assert "failed_nets" in metrics and "failure_reasons" in metrics
        if result.detailed_result.failed:
            assert metrics["failed_nets"] == sorted(
                result.detailed_result.failed
            )


def _assert_no_half_committed_wiring(space, detailed):
    """Nets not reported as routed may hold only RESERVED-level wiring
    (pin-access reservations made during preprocessing) - an aborted
    search must never leave NORMAL/CRITICAL route wiring behind."""
    reserved = int(RipupLevel.RESERVED)
    routed = set(detailed.routed)
    for name, route in space.routes.items():
        if name in routed or route.is_empty():
            continue
        levels = [lvl for _item, lvl, _t in route.wire_items()]
        levels += [lvl for _item, lvl, _t in route.via_items()]
        assert all(lvl == reserved for lvl in levels), (
            name, sorted(set(levels)),
        )


class TestDeadlineMidSearch:
    def test_expired_deadline_leaves_space_consistent(self):
        """An already-expired stage budget aborts every net before any
        route wiring commits; the space stays consistent."""
        chip = _chip("dead", nets=4, seed=2)
        flow = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, stage_budget_s=0.0
        )
        result = flow.run()
        detailed = result.detailed_result
        # Every non-prerouted net must be accounted for as a failure
        # (stage budget or timeout), not silently dropped.
        assert detailed.failed, "a zero stage budget must fail the nets"
        for name in detailed.failed:
            assert name in detailed.failures
            assert detailed.failures[name].reason in (
                "timeout", "stage-budget", "unroutable", "exception",
            )
        _assert_no_half_committed_wiring(result.space, detailed)

    def test_net_deadline_failure_reports_timeout(self):
        chip = _chip("timeout", nets=4, seed=2)
        flow = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, net_timeout_s=0.0
        )
        result = flow.run()
        detailed = result.detailed_result
        assert detailed.failed, "a zero net deadline must fail the nets"
        for name in detailed.failed:
            assert detailed.failures[name].reason == "timeout"
        _assert_no_half_committed_wiring(result.space, detailed)

    def test_expired_connector_deadline_commits_nothing(self):
        """Unit-level: connect_net with an expired deadline returns
        deadline_expired and leaves wire/via totals untouched."""
        from repro.droute.area import RoutingArea
        from repro.droute.router import DetailedRouter
        from repro.droute.space import RoutingSpace

        chip = _chip("unit", nets=4, seed=2)
        space = RoutingSpace(chip)
        router = DetailedRouter(space)
        router.preprocess_pin_access(chip.nets)
        before = {
            name: (len(route.wires), len(route.vias))
            for name, route in space.routes.items()
        }
        now = [0.0]
        expired = Deadline(1.0, clock=lambda: now[0])
        now[0] = 10.0
        connection = router.connector.connect_net(
            chip.nets[0], RoutingArea.everywhere(), deadline=expired
        )
        assert connection.deadline_expired
        assert not connection.success
        after = {
            name: (len(route.wires), len(route.vias))
            for name, route in space.routes.items()
        }
        assert after == before


class TestCheckpointResume:
    def _metric_fields(self, metrics):
        d = metrics.as_dict()
        return {
            k: d[k]
            for k in ("netlength", "vias", "scenic_25", "scenic_50",
                      "errors", "failed_nets")
        }

    def test_kill_after_global_then_resume_matches(self, tmp_path):
        spec = ChipSpec("ckpt", rows=2, row_width_cells=5, net_count=8, seed=3)
        baseline = BonnRouteFlow(
            generate_chip(spec), gr_phases=5, seed=1, cleanup=False
        ).run()

        path = str(tmp_path / "flow.ckpt.json")

        class Killed(Exception):
            pass

        class KillAfterGlobal(BonnRouteFlow):
            def _detailed_router(self, space, session):
                raise Killed()

        with pytest.raises(Killed):
            KillAfterGlobal(
                generate_chip(spec), gr_phases=5, seed=1, cleanup=False,
                checkpoint_path=path,
            ).run()
        checkpoint = load_checkpoint(path)
        assert checkpoint is not None and checkpoint["stage"] == "global"

        resumed = BonnRouteFlow(
            generate_chip(spec), gr_phases=5, seed=1, cleanup=False,
            checkpoint_path=path, resume=True,
        ).run()
        assert resumed.failure_report.resumed_from == "global"
        assert self._metric_fields(resumed.metrics) == self._metric_fields(
            baseline.metrics
        )

    def test_resume_after_detailed_skips_rerouting(self, tmp_path):
        spec = ChipSpec("ckpt2", rows=2, row_width_cells=4, net_count=5, seed=2)
        path = str(tmp_path / "flow.ckpt.json")
        first = BonnRouteFlow(
            generate_chip(spec), gr_phases=4, seed=1, cleanup=False,
            checkpoint_path=path,
        ).run()
        checkpoint = load_checkpoint(path)
        assert checkpoint["stage"] == "detailed"

        resumed = BonnRouteFlow(
            generate_chip(spec), gr_phases=4, seed=1, cleanup=False,
            checkpoint_path=path, resume=True,
        ).run()
        assert resumed.failure_report.resumed_from == "detailed"
        assert resumed.detailed_result.routed == first.detailed_result.routed
        assert self._metric_fields(resumed.metrics) == self._metric_fields(
            first.metrics
        )

    def test_checkpoint_rejects_wrong_chip(self, tmp_path):
        from repro.io.checkpoint import CheckpointError

        spec = ChipSpec("right", rows=2, row_width_cells=4, net_count=4, seed=2)
        path = str(tmp_path / "flow.ckpt.json")
        BonnRouteFlow(
            generate_chip(spec), gr_phases=4, seed=1, cleanup=False,
            checkpoint_path=path,
        ).run()
        with pytest.raises(CheckpointError):
            load_checkpoint(path, chip_name="wrong")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, seed=999)


class TestInjectedRecoveryRate:
    def test_ladder_recovers_most_injected_nets(self):
        """The ISSUE acceptance scenario: transient path-search faults on
        ~10 % of nets; the flow completes, routes >= 90 % of the injected
        nets via the ladder, and reports the rest as structured opens."""
        chip = generate_chip(
            ChipSpec("inject", rows=3, row_width_cells=6, net_count=12, seed=5)
        )
        plan = FaultPlan.parse(["path_search:0.35"], seed=11)
        injected = plan.injected_nets(
            "path_search", [n.name for n in chip.nets]
        )
        assert injected, "plan must inject at least one net"
        result = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, fault_plan=plan
        ).run()
        detailed = result.detailed_result
        recovered = [n for n in injected if n in detailed.routed]
        assert len(recovered) >= 0.9 * len(injected)
        for name in injected:
            if name not in detailed.routed:
                assert name in detailed.failures
