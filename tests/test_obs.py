"""Tests for the observability layer (repro.obs).

Covers the span tracer (nesting, timing with an injected clock), the
metrics registry, disabled-mode behaviour, the JSONL sink round-trip
against the schema validator, the congestion heatmap export, and a full
CLI ``route --trace-out`` run whose emitted metric names must all be
catalogued in docs/OBSERVABILITY.md.
"""

import json
import re
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.chip.generator import ChipSpec, generate_chip
from repro.flow.bonnroute import BonnRouteFlow
from repro.io.textformat import write_chip_file
from repro.obs import (
    OBS,
    FlightRecorder,
    Histogram,
    JsonlTraceSink,
    Observer,
    congestion_heatmap,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs import schema as trace_schema
from repro.obs.core import _NULL_CONTEXT
from repro.obs.resource import ResourceSampler, peak_rss_bytes, rss_bytes

REPO_ROOT = Path(__file__).resolve().parents[1]

SPEC = ChipSpec("obstest", rows=2, row_width_cells=4, net_count=6, seed=3)


@pytest.fixture(autouse=True)
def _clean_singleton():
    """The process-wide OBS singleton must not leak state across tests."""
    OBS.reset()
    OBS.enabled = False
    yield
    OBS.reset()
    OBS.enabled = False


class FakeClock:
    """Deterministic monotonic clock for timing assertions."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float) -> None:
        self.t += dt


class TestCore:
    def test_histogram_streams_stats(self):
        h = Histogram()
        for v in (4.0, 1.0, 7.0):
            h.add(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["min"] == 1.0
        assert d["max"] == 7.0
        assert d["mean"] == pytest.approx(4.0)

    def test_spans_nest_and_time(self):
        clock = FakeClock()
        obs = Observer(enabled=True, clock=clock)
        with obs.trace("outer", chip="c") as outer:
            clock.tick(1.0)
            with obs.trace("inner") as inner:
                clock.tick(0.25)
            clock.tick(0.5)
        assert outer.depth == 0
        assert inner.depth == 1
        assert inner.duration == pytest.approx(0.25)
        assert outer.duration == pytest.approx(1.75)
        # Completion order: inner closes before outer.
        assert [s.name for s in obs.spans] == ["inner", "outer"]
        assert obs.span_totals["outer"] == [1, pytest.approx(1.75)]
        assert obs.summary()["spans"]["inner"]["count"] == 1

    def test_counters_gauges_histograms_aggregate(self):
        obs = Observer(enabled=True, clock=FakeClock())
        obs.count("a.hits")
        obs.count("a.hits", 4)
        obs.gauge("a.lambda", 2.0)
        obs.gauge("a.lambda", 0.5)  # latest value wins
        obs.observe("a.size", 10.0)
        obs.observe("a.size", 20.0)
        summary = obs.summary()
        assert summary["counters"]["a.hits"] == 5
        assert summary["gauges"]["a.lambda"] == 0.5
        assert summary["histograms"]["a.size"]["mean"] == pytest.approx(15.0)
        table = obs.summary_table()
        assert "a.hits" in table and "a.lambda" in table

    def test_disabled_mode_records_nothing(self):
        obs = Observer(enabled=False, clock=FakeClock())
        ctx = obs.trace("anything", net="n1")
        # Shared no-op context: no allocation per call site.
        assert ctx is _NULL_CONTEXT
        assert obs.trace("other") is ctx
        with ctx:
            pass
        assert obs.spans == []
        assert obs.span_totals == {}
        assert obs.summary_table() == "(no observability data recorded)"

    def test_reset_clears_everything(self):
        obs = Observer(enabled=True, clock=FakeClock())
        obs.count("x")
        with obs.trace("s"):
            pass
        obs.reset()
        assert obs.counters == {} and obs.spans == []


class TestJsonlSink:
    def test_round_trip_validates_and_preserves_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        obs = Observer(enabled=True, clock=clock)
        obs.configure(enabled=True, sink=JsonlTraceSink(str(path), meta={"chip": "c1"}))
        with obs.trace("flow.run", chip="c1"):
            clock.tick(0.5)
            obs.event("sharing.phase", phase=1, lam=0.9)
            obs.count("pathsearch.searches", 3)
        obs.close()

        lines = path.read_text().splitlines()
        assert validate_trace_lines(lines) == []
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == "repro-trace"
        assert records[0]["chip"] == "c1"
        kinds = [r["type"] for r in records]
        assert kinds == ["meta", "event", "span", "summary"]
        span = records[2]
        assert span["name"] == "flow.run"
        assert span["dur"] == pytest.approx(0.5)
        assert span["attrs"] == {"chip": "c1"}
        assert records[-1]["counters"]["pathsearch.searches"] == 3

    def test_validator_rejects_malformed_traces(self):
        meta = json.dumps(
            {"type": "meta", "schema": "repro-trace", "version": 1}
        )
        summary = json.dumps(
            {"type": "summary", "counters": {}, "gauges": {},
             "histograms": {}, "spans": {}}
        )
        assert validate_trace_lines([]) != []
        assert validate_trace_lines([summary]) != []  # no meta header
        # Summary must be last and unique.
        assert validate_trace_lines([meta, summary, summary]) != []
        bad_name = json.dumps(
            {"type": "span", "name": "Bad Name!", "start": 0.0,
             "dur": 0.0, "depth": 0}
        )
        errors = validate_trace_lines([meta, bad_name, summary])
        assert any("invalid span name" in e for e in errors)
        negative = json.dumps(
            {"type": "span", "name": "ok.name", "start": 0.0,
             "dur": -1.0, "depth": 0}
        )
        errors = validate_trace_lines([meta, negative, summary])
        assert any("'dur'" in e for e in errors)
        assert validate_trace_lines([meta, "not json", summary]) != []


class TestFlowIntegration:
    def test_flow_metrics_obs_section(self):
        OBS.configure(enabled=True)
        result = BonnRouteFlow(generate_chip(SPEC), gr_phases=6, seed=1).run()
        obs = result.metrics.obs
        assert obs, "metrics.obs must be populated when observability is on"
        assert obs["counters"]["pathsearch.searches"] > 0
        assert "flow.run" in obs["spans"]
        assert obs["spans"]["flow.run"]["count"] == 1
        # as_dict carries the section through (the Table I hook).
        assert result.metrics.as_dict()["obs"] is obs

    def test_disabled_flow_has_no_obs_section(self):
        result = BonnRouteFlow(generate_chip(SPEC), gr_phases=6, seed=1).run()
        assert result.metrics.obs == {}
        assert "obs" not in result.metrics.as_dict()

    def test_congestion_heatmap_export(self):
        result = BonnRouteFlow(generate_chip(SPEC), gr_phases=6, seed=1).run()
        heatmap = congestion_heatmap(result.global_result)
        assert heatmap["type"] == "congestion_heatmap"
        assert heatmap["chip"] == "obstest"
        assert len(heatmap["tiles"]) == 2
        for edge in heatmap["edges"]:
            assert edge["usage"] >= 1
            assert len(edge["a"]) == 3 and len(edge["b"]) == 3
        if heatmap["edges"]:
            assert heatmap["max_utilization"] == pytest.approx(
                max(e["utilization"] for e in heatmap["edges"])
            )


class TestCliTrace:
    def test_route_trace_out_produces_valid_documented_trace(self, tmp_path):
        chip_path = str(tmp_path / "chip.txt")
        routes_path = str(tmp_path / "routes.txt")
        trace_path = str(tmp_path / "trace.jsonl")
        heatmap_path = str(tmp_path / "heatmap.json")
        write_chip_file(generate_chip(SPEC), chip_path)
        code = main([
            "route", chip_path, routes_path, "--gr-phases", "6",
            "--seed", "1", "--trace-out", trace_path,
            "--heatmap-out", heatmap_path,
        ])
        assert code in (0, 1)

        assert validate_trace_file(trace_path) == []
        records = [
            json.loads(line)
            for line in Path(trace_path).read_text().splitlines()
        ]
        summary = records[-1]
        assert summary["type"] == "summary"
        counters = summary["counters"]
        spans = summary["spans"]
        # Acceptance bar: the summary reports per-stage spans and at
        # least 8 distinct counters, every one catalogued in the docs.
        for stage in ("flow.global", "flow.detailed", "flow.run"):
            assert stage in spans, f"missing stage span {stage}"
        assert len(counters) >= 8
        documented = set(
            re.findall(
                r"`([a-z0-9_.]+)`",
                (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(),
            )
        )
        emitted = (
            set(counters)
            | set(summary["gauges"])
            | set(summary["histograms"])
            | set(spans)
            | {r["name"] for r in records if r["type"] == "event"}
        )
        undocumented = sorted(emitted - documented)
        assert undocumented == [], (
            f"names missing from docs/OBSERVABILITY.md: {undocumented}"
        )
        # The pluggable search kernels must identify themselves: every
        # run carries at least one pathsearch.kernel.* counter, and the
        # whole documented family must exist in the docs so a renamed
        # or undocumented kernel counter fails here.
        assert any(name.startswith("pathsearch.kernel.") for name in counters)
        for name in (
            "pathsearch.kernel.heap_searches",
            "pathsearch.kernel.bucket_searches",
            "pathsearch.kernel.stale_pops",
            "pathsearch.kernel.bucket_priorities",
            "pathsearch.kernel.pi_gr_searches",
        ):
            assert name in documented, f"{name} missing from the docs"
        # Memory-bounded spaces: lazy fixed rows are on by default, so a
        # traced run must emit the laziness counters — and the whole
        # memory family (including the shard store, which this small
        # non-sharded run does not exercise) must be catalogued.
        assert "space.lazy_rows" in counters
        assert "shapegrid.fixed_shapes" in counters
        assert "space.fixed_shapes_registered" in summary["gauges"]
        for name in (
            "space.lazy_rows",
            "space.fixed_shapes_registered",
            "shapegrid.fixed_shapes",
            "pinaccess.evictions",
            "shards.loads",
            "shards.evictions",
            "shards.resident",
        ):
            assert name in documented, f"{name} missing from the docs"

        heatmap = json.loads(Path(heatmap_path).read_text())
        assert heatmap["type"] == "congestion_heatmap"
        assert heatmap["edges"]


class TestFlightRecorder:
    def test_ring_is_bounded_oldest_first(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.add({"type": "note", "name": "n.note", "t": float(i)})
        dump = ring.dump()
        assert len(ring) == 4
        assert [r["t"] for r in dump] == [6.0, 7.0, 8.0, 9.0]

    def test_flight_note_records_with_observability_off(self):
        assert not OBS.enabled
        OBS.flight_note("resilience.net_failure", net="n3", reason="timeout")
        dump = OBS.flight.dump()
        assert len(dump) == 1
        assert dump[0]["name"] == "resilience.net_failure"
        assert dump[0]["attrs"] == {"net": "n3", "reason": "timeout"}
        # The always-on channel must not wake the rest of the registry.
        assert OBS.spans == []
        assert dict(OBS.counters) == {}

    def test_spans_and_events_enter_ring_when_enabled(self):
        OBS.configure(enabled=True)
        with OBS.trace("flow.global"):
            OBS.event("sharing.phase", phase=1)
        kinds = [r["type"] for r in OBS.flight.dump()]
        assert kinds == ["event", "span"]

    def test_reset_clears_the_ring(self):
        OBS.flight_note("flow.stage", stage="global")
        assert len(OBS.flight) == 1
        OBS.reset()
        assert len(OBS.flight) == 0


class TestTraceContextV2:
    def test_span_ids_and_parent_links_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        obs = Observer(enabled=True, clock=clock)
        obs.configure(enabled=True, sink=JsonlTraceSink(str(path)))
        assert obs.trace_id
        with obs.trace("flow.run"):
            outer = obs.current_span_id()
            assert outer == "m-1"
            with obs.trace("flow.global"):
                clock.tick(0.1)
        obs.close()

        lines = path.read_text().splitlines()
        assert validate_trace_lines(lines) == []
        records = [json.loads(line) for line in lines]
        assert records[0]["version"] == 2
        assert records[0]["trace_id"] == obs.trace_id
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["flow.run"]["id"] == "m-1"
        assert "parent" not in spans["flow.run"]
        assert spans["flow.global"]["parent"] == "m-1"
        # Main-process spans carry no process/worker fields.
        assert "process" not in spans["flow.run"]
        assert "worker" not in spans["flow.run"]

    def test_worker_context_prefixes_ids_and_grafts_root(self):
        obs = Observer(enabled=True)
        obs.configure(enabled=True)
        obs.set_context(
            trace_id="abc123", process="worker", worker_id=3,
            root_parent_id="m-7",
        )
        with obs.trace("droute.net", net="n1"):
            span_id = obs.current_span_id()
        assert span_id == "w3-1"
        record = obs.spans[-1].as_record()
        assert record["process"] == "worker"
        assert record["worker"] == 3
        assert record["parent"] == "m-7"


class TestValidatorV2:
    def _lines(self, *bodies, version=2):
        meta = {"type": "meta", "schema": "repro-trace", "version": version}
        summary = {"type": "summary", "counters": {}, "gauges": {},
                   "histograms": {}, "spans": {}}
        return [json.dumps(r) for r in (meta, *bodies, summary)]

    def test_v1_validates_with_legacy_note(self):
        notes = []
        lines = self._lines(
            {"type": "span", "name": "flow.run", "start": 0.0,
             "dur": 1.0, "depth": 0},
            version=1,
        )
        assert validate_trace_lines(lines, notes=notes) == []
        assert any("legacy" in note for note in notes)

    def test_v2_rejects_duplicate_span_ids(self):
        span = {"type": "span", "name": "flow.run", "start": 0.0,
                "dur": 1.0, "depth": 0, "id": "m-1"}
        errors = validate_trace_lines(self._lines(span, dict(span)))
        assert any("duplicate span id" in e for e in errors)

    def test_v2_rejects_unknown_parent(self):
        span = {"type": "span", "name": "flow.run", "start": 0.0,
                "dur": 1.0, "depth": 0, "id": "m-1", "parent": "m-99"}
        errors = validate_trace_lines(self._lines(span))
        assert any("does not reference" in e for e in errors)

    def test_cli_accepts_multiple_files_and_directories(self, tmp_path, capsys):
        good = tmp_path / "a.jsonl"
        good.write_text("\n".join(self._lines()) + "\n")
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        legacy = shard_dir / "b.jsonl"
        legacy.write_text("\n".join(self._lines(version=1)) + "\n")
        assert trace_schema.main([str(good), str(shard_dir)]) == 0
        out = capsys.readouterr().out
        assert f"{good}: valid repro-trace" in out
        assert f"{legacy}: valid repro-trace (legacy trace)" in out

    def test_cli_fails_on_any_invalid_shard(self, tmp_path):
        good = tmp_path / "a.jsonl"
        good.write_text("\n".join(self._lines()) + "\n")
        bad = tmp_path / "b.jsonl"
        bad.write_text("not json\n")
        assert trace_schema.main([str(good), str(bad)]) == 1


class TestResourceTelemetry:
    def test_sampler_publishes_gauges_when_enabled(self):
        OBS.configure(enabled=True)
        sampler = ResourceSampler()
        assert sampler.sample() > 0
        assert OBS.gauges["resource.rss_bytes"] > 0
        assert (
            OBS.gauges["resource.rss_peak_bytes"]
            >= OBS.gauges["resource.rss_bytes"]
        )
        assert OBS.gauges["resource.gc_collections"] >= 0

    def test_sampler_is_silent_when_disabled(self):
        assert not OBS.enabled
        sampler = ResourceSampler()
        assert sampler.sample() > 0
        assert dict(OBS.gauges) == {}

    def test_raw_readings_are_sane(self):
        assert rss_bytes() > 0
        assert peak_rss_bytes() >= rss_bytes() // 2


class TestFlowFlightDump:
    def test_net_failure_dumps_ring_with_obs_off(self):
        from repro.flow.faults import FaultPlan, FaultSpec

        assert not OBS.enabled
        chip = generate_chip(SPEC)
        victim = chip.nets[0].name
        # Fault both attempt sites: the isr_fallback rung survives pure
        # path_search faults, and a recovered net leaves no failure.
        plan = FaultPlan(
            [
                FaultSpec("path_search", nets=[victim], fires_per_net=None),
                FaultSpec("pin_access", nets=[victim], fires_per_net=None),
            ],
            seed=1,
        )
        result = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, fault_plan=plan
        ).run()
        report = result.failure_report
        assert victim in report.net_failures
        assert report.flight_recorder
        names = [r.get("name") for r in report.flight_recorder]
        assert "resilience.net_failure" in names
        assert "flow.stage" in names
        assert report.as_dict()["flight_recorder"] == report.flight_recorder
