"""Tests for bench persistence (``benchmarks/common``) and the
perf-regression gate (``python -m repro.obs.regress``).

The gate's contract is its exit codes: 0 when the current run is within
tolerance of the baseline, 1 when a deterministic work counter drifted
beyond it, 2 on unusable input (format, bench-name or bench-mode
mismatch).  CI scripts depend on exactly this, so the tests drive
``main()`` end to end over files produced by the real writer.
"""

import json

import pytest

from benchmarks.common import (
    BENCH_CHIP_SPECS,
    BENCH_MAX_RUNS,
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    DEFAULT_CHIP_COUNT,
    bench_mode,
    bench_observability,
    bench_specs,
    obs_work_counters,
    write_bench_record,
)
from repro.obs import OBS
from repro.obs.regress import (
    BenchFormatError,
    compare_runs,
    load_latest_run,
    main,
)


@pytest.fixture(autouse=True)
def _bench_env(monkeypatch):
    """Benches read the environment; isolate every test from the shell."""
    for var in ("REPRO_BENCH_QUICK", "REPRO_BENCH_FULL",
                "REPRO_BENCH_DIR", "REPRO_BENCH_PERSIST"):
        monkeypatch.delenv(var, raising=False)
    OBS.reset()
    OBS.enabled = False
    yield monkeypatch
    OBS.reset()
    OBS.enabled = False


def _write(tmp_path, work, wall_clock=None, bench="table1"):
    path = write_bench_record(
        bench, wall_clock or {}, work, directory=str(tmp_path)
    )
    assert path is not None
    return str(path)


class TestBenchMode:
    def test_default_mode(self):
        assert bench_mode() == "default"
        assert bench_specs() == BENCH_CHIP_SPECS[:DEFAULT_CHIP_COUNT]

    def test_quick_mode_selects_smallest_chip(self, _bench_env):
        _bench_env.setenv("REPRO_BENCH_QUICK", "1")
        assert bench_mode() == "quick"
        assert bench_specs() == [BENCH_CHIP_SPECS[0]]

    def test_full_mode_selects_all_chips(self, _bench_env):
        _bench_env.setenv("REPRO_BENCH_FULL", "1")
        assert bench_specs() == BENCH_CHIP_SPECS

    def test_quick_wins_over_full(self, _bench_env):
        _bench_env.setenv("REPRO_BENCH_FULL", "1")
        _bench_env.setenv("REPRO_BENCH_QUICK", "1")
        assert bench_mode() == "quick"


class TestBenchObservability:
    def test_enables_and_restores(self):
        with bench_observability() as observer:
            assert observer is OBS and OBS.enabled
            OBS.count("pathsearch.labels_pushed", 7)
            assert obs_work_counters("br.") == {"br.pathsearch.labels_pushed": 7}
        assert not OBS.enabled
        assert not OBS.counters

    def test_disabled_yields_none(self):
        with bench_observability(enabled=False) as observer:
            assert observer is None
            assert not OBS.enabled

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with bench_observability():
                raise RuntimeError("bench blew up")
        assert not OBS.enabled


class TestWriteBenchRecord:
    def test_creates_versioned_document(self, tmp_path):
        path = _write(tmp_path, {"br.vias": 12}, {"br.time_s": 1.23456})
        document = json.loads(open(path).read())
        assert document["schema"] == BENCH_SCHEMA_NAME
        assert document["version"] == BENCH_SCHEMA_VERSION
        assert document["bench"] == "table1"
        (run,) = document["runs"]
        assert run["work"] == {"br.vias": 12}
        assert run["wall_clock"] == {"br.time_s": 1.2346}  # rounded
        assert run["env"]["mode"] == "default"
        assert "python" in run["env"]

    def test_appends_and_truncates(self, tmp_path):
        for index in range(4):
            write_bench_record(
                "table1", {}, {"n": index}, directory=str(tmp_path), max_runs=3
            )
        document = json.loads(
            open(tmp_path / "BENCH_table1.json").read()
        )
        assert [run["work"]["n"] for run in document["runs"]] == [1, 2, 3]
        assert BENCH_MAX_RUNS >= 3  # default cap is at least as generous

    def test_persist_disabled(self, tmp_path, _bench_env):
        _bench_env.setenv("REPRO_BENCH_PERSIST", "0")
        assert write_bench_record("table1", {}, {"n": 1},
                                  directory=str(tmp_path)) is None
        assert not (tmp_path / "BENCH_table1.json").exists()

    def test_bench_dir_env_redirects(self, tmp_path, _bench_env):
        _bench_env.setenv("REPRO_BENCH_DIR", str(tmp_path / "sub"))
        path = write_bench_record("table9", {}, {"n": 1})
        assert path == tmp_path / "sub" / "BENCH_table9.json"
        assert path.exists()

    def test_corrupt_existing_file_is_replaced(self, tmp_path):
        target = tmp_path / "BENCH_table1.json"
        target.write_text("{not json")
        path = _write(tmp_path, {"n": 5})
        document = json.loads(open(path).read())
        assert [run["work"]["n"] for run in document["runs"]] == [5]


class TestLoadLatestRun:
    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other", "runs": [{}]}))
        with pytest.raises(BenchFormatError, match="not a repro-bench"):
            load_latest_run(str(path))

    def test_rejects_empty_runs(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps(
            {"schema": "repro-bench", "bench": "t", "runs": []}
        ))
        with pytest.raises(BenchFormatError, match="no recorded runs"):
            load_latest_run(str(path))

    def test_returns_latest(self, tmp_path):
        for index in range(2):
            _write(tmp_path, {"n": index})
        bench, run = load_latest_run(str(tmp_path / "BENCH_table1.json"))
        assert bench == "table1"
        assert run["work"] == {"n": 1}


class TestCompareRuns:
    def test_zero_baseline_nonzero_current_is_infinite_drift(self):
        (finding,) = compare_runs(
            {"work": {"errors": 0}}, {"work": {"errors": 3}}, 10.0
        )
        assert finding.delta_pct == float("inf")
        assert finding.status == "FAIL"

    def test_within_tolerance_ok(self):
        (finding,) = compare_runs(
            {"work": {"n": 100}}, {"work": {"n": 109}}, 10.0
        )
        assert finding.status == "ok"
        assert finding.delta_pct == pytest.approx(9.0)

    def test_missing_work_metric_fails_new_is_reported(self):
        findings = compare_runs(
            {"work": {"gone": 1}}, {"work": {"added": 2}}, 10.0
        )
        statuses = {f.name: f.status for f in findings}
        assert statuses == {"gone": "FAIL", "added": "new"}

    def test_wall_clock_not_gated_by_default(self):
        (finding,) = compare_runs(
            {"wall_clock": {"t": 1.0}}, {"wall_clock": {"t": 9.0}}, 10.0
        )
        assert finding.section == "wall_clock"
        assert finding.status == "ok"


class TestRegressCli:
    def test_self_comparison_passes(self, tmp_path, capsys):
        path = _write(tmp_path, {"br.labels": 63047, "br.vias": 33})
        assert main([path, path, "--tolerance-pct", "10"]) == 0
        assert "no regression detected" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        base = _write(tmp_path, {"br.labels": 1000, "br.oracle": 60})
        current_dir = tmp_path / "cur"
        current_dir.mkdir()
        cur = _write(current_dir, {"br.labels": 1250, "br.oracle": 60})
        assert main([base, cur, "--tolerance-pct", "10"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION: 1 metric(s)" in captured.err
        assert "+25.0%" in captured.out

    def test_improvement_passes_with_refresh_hint(self, tmp_path, capsys):
        base = _write(tmp_path, {"br.labels": 1000})
        current_dir = tmp_path / "cur"
        current_dir.mkdir()
        cur = _write(current_dir, {"br.labels": 700})
        assert main([base, cur, "--tolerance-pct", "10"]) == 0
        assert "refreshing the baseline" in capsys.readouterr().out

    def test_time_tolerance_gates_wall_clock(self, tmp_path, capsys):
        base = _write(tmp_path, {"n": 1}, {"t": 1.0})
        current_dir = tmp_path / "cur"
        current_dir.mkdir()
        cur = _write(current_dir, {"n": 1}, {"t": 2.0})
        assert main([base, cur]) == 0
        capsys.readouterr()
        assert main([base, cur, "--time-tolerance-pct", "50"]) == 1

    def test_format_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        good = _write(tmp_path, {"n": 1})
        assert main([str(bad), good]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_name_mismatch_exits_2(self, tmp_path, capsys):
        a = _write(tmp_path, {"n": 1}, bench="table1")
        b = _write(tmp_path, {"n": 1}, bench="table3")
        assert main([a, b]) == 2
        assert "bench mismatch" in capsys.readouterr().err

    def test_mode_mismatch_exits_2_unless_allowed(
        self, tmp_path, capsys, _bench_env
    ):
        base = _write(tmp_path, {"n": 100})
        _bench_env.setenv("REPRO_BENCH_QUICK", "1")
        current_dir = tmp_path / "cur"
        current_dir.mkdir()
        cur = _write(current_dir, {"n": 100})
        assert main([base, cur]) == 2
        assert "mode mismatch" in capsys.readouterr().err
        assert main([base, cur, "--allow-mode-mismatch"]) == 0
