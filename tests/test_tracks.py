"""Tests for track optimization (Thm 3.1) and the track graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip.generator import TABLE_CHIP_SPECS, generate_chip
from repro.geometry.rect import Rect
from repro.grid.tracks import (
    TrackPlan,
    build_track_plan,
    coverage_profile,
    optimize_tracks,
)
from repro.grid.trackgraph import TrackGraph
from repro.tech.layers import Direction


class TestCoverageProfile:
    def test_single_rect(self):
        pieces = coverage_profile([Rect(0, 0, 100, 50)], Direction.HORIZONTAL)
        assert pieces == [(0, 51, 100)]

    def test_stacked_rects_sum(self):
        pieces = coverage_profile(
            [Rect(0, 0, 100, 50), Rect(200, 20, 260, 30)], Direction.HORIZONTAL
        )
        # Between y=20 and y=30 both contribute: 100 + 60.
        values = {y: v for lo, hi, v in pieces for y in range(lo, hi)}
        assert values[25] == 160
        assert values[10] == 100
        assert values[40] == 100

    def test_degenerate_alignment_rect(self):
        pieces = coverage_profile([Rect(0, 5, 100, 5)], Direction.HORIZONTAL)
        assert pieces == [(5, 6, 100)]


class TestOptimizeTracks:
    def test_free_plane_packs_at_pitch(self):
        rects = [Rect(0, 0, 1000, 800)]
        tracks = optimize_tracks(rects, pitch=80, span=(0, 800))
        assert len(tracks) == 11  # 0, 80, ..., 800
        for a, b in zip(tracks, tracks[1:]):
            assert b - a >= 80

    def test_respects_pitch(self):
        rects = [Rect(0, 0, 1000, 100)]
        tracks = optimize_tracks(rects, pitch=80, span=(0, 100))
        for a, b in zip(tracks, tracks[1:]):
            assert b - a >= 80

    def test_avoids_blocked_band(self):
        # Usable area split by a blocked band: tracks should sit in the
        # usable rects, not the gap.
        rects = [Rect(0, 0, 1000, 100), Rect(0, 300, 1000, 400)]
        tracks = optimize_tracks(rects, pitch=80, span=(0, 400))
        uncovered = [t for t in tracks if 100 < t < 300]
        assert uncovered == []

    def test_offset_matters(self):
        # A single usable band narrower than 2 pitches but wide enough for
        # two tracks only at exact positions.
        rects = [Rect(0, 95, 1000, 175)]
        tracks = optimize_tracks(rects, pitch=80, span=(0, 400))
        assert len(tracks) == 2
        assert tracks[0] >= 95 and tracks[1] <= 175

    def test_empty_input(self):
        assert optimize_tracks([], pitch=80, span=(0, 100)) == []

    def test_bad_pitch_rejected(self):
        with pytest.raises(ValueError):
            optimize_tracks([], pitch=0, span=(0, 10))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 400), st.integers(10, 120), st.integers(20, 300)),
            min_size=1,
            max_size=6,
        )
    )
    def test_optimal_vs_bruteforce(self, bands):
        """DP result matches brute force over all pitch-grid placements."""
        pitch = 40
        rects = []
        y = 0
        for gap, height, width in bands:
            y += gap
            rects.append(Rect(0, y, width, y + height))
            y += height
        span = (0, min(y + 50, 600))
        tracks = optimize_tracks(rects, pitch, span)
        pieces = coverage_profile(rects, Direction.HORIZONTAL)

        def value(coord):
            for lo, hi, v in pieces:
                if lo <= coord < hi:
                    return v
            return 0

        achieved = sum(value(t) for t in tracks)
        # Brute force over candidate coordinates with a small-step DP.
        candidates = sorted(
            {c for lo, hi, _ in pieces for c in (lo, hi)}
            | {span[0] + k * pitch for k in range((span[1] - span[0]) // pitch + 1)}
            | {lo + k * pitch for lo, hi, _ in pieces for k in range(-2, (span[1] - lo) // pitch + 1)}
        )
        candidates = [c for c in candidates if span[0] <= c <= span[1]]
        import bisect as _bisect

        best = [0] * (len(candidates) + 1)
        for i, c in enumerate(candidates):
            j = _bisect.bisect_right(candidates, c - pitch)
            best[i + 1] = max(best[i], value(c) + best[j])
        assert achieved == best[len(candidates)]


class TestTrackPlan:
    def test_plan_avoids_power_rails(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        plan = build_track_plan(chip, pin_alignment=False)
        rails = [b.rect for b in chip.blockages if b.label == "power_rail"]
        layer = chip.stack[1]
        margin = layer.min_width // 2 + layer.min_spacing
        for track_y in plan.layer_tracks(1):
            for rail in rails:
                assert not (rail.y_lo - margin < track_y < rail.y_hi + margin), (
                    f"track {track_y} runs inside expanded power rail {rail}"
                )

    def test_tracks_at_pitch_everywhere(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        plan = build_track_plan(chip)
        for layer in chip.stack:
            tracks = plan.layer_tracks(layer.index)
            assert tracks, f"no tracks on layer {layer.index}"
            for a, b in zip(tracks, tracks[1:]):
                assert b - a >= layer.pitch

    def test_pin_alignment_attracts_tracks(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        aligned = build_track_plan(chip, pin_alignment=True)
        plain = build_track_plan(chip, pin_alignment=False)
        # Count pins whose centre y (M1 horizontal) lies exactly on a track.
        def on_track_pins(plan: TrackPlan) -> int:
            tracks = set(plan.layer_tracks(1))
            count = 0
            for pin in chip.all_pins():
                for layer, rect in pin.shapes:
                    if layer == 1 and rect.center[1] in tracks:
                        count += 1
            return count

        assert on_track_pins(aligned) >= on_track_pins(plain)


class TestTrackGraph:
    def _graph(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        plan = build_track_plan(chip)
        return chip, TrackGraph(chip.stack, plan)

    def test_positions_roundtrip(self):
        chip, graph = self._graph()
        for z in chip.stack.indices:
            if not graph.tracks[z] or not graph.crosses[z]:
                continue
            vertex = (z, 0, 0)
            x, y, zz = graph.position(vertex)
            assert graph.vertex_at(x, y, zz) == vertex

    def test_neighbors_are_symmetric(self):
        chip, graph = self._graph()
        vertex = (2, 1, 1)
        assert graph.is_vertex(vertex)
        for neighbour, kind, length in graph.neighbors(vertex):
            back = dict(
                (n, (k, l)) for n, k, l in graph.neighbors(neighbour)
            )
            assert vertex in back
            assert back[vertex][0] == kind
            assert back[vertex][1] == length

    def test_via_partner_shares_xy(self):
        chip, graph = self._graph()
        found = False
        for t in range(min(3, len(graph.tracks[2]))):
            for c in range(min(5, len(graph.crosses[2]))):
                vertex = (2, t, c)
                partner = graph.via_partner(vertex, 3)
                if partner is not None:
                    x1, y1, _ = graph.position(vertex)
                    x2, y2, _ = graph.position(partner)
                    assert (x1, y1) == (x2, y2)
                    found = True
        assert found

    def test_vertices_in_rect(self):
        chip, graph = self._graph()
        die = chip.die
        inside = graph.vertices_in_rect(2, die.x_lo, die.y_lo, die.x_hi, die.y_hi)
        assert len(inside) == len(graph.tracks[2]) * len(graph.crosses[2])
        empty = graph.vertices_in_rect(2, -100, -100, -90, -90)
        assert empty == []

    def test_nearest_vertex(self):
        chip, graph = self._graph()
        x, y, z = graph.position((1, 0, 0))
        assert graph.nearest_vertex(x + 3, y + 3, 1) == (1, 0, 0)
