"""Tests for same-net rule postprocessing (Sec. 3.7 / 4.4)."""

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.route import NetRoute, ViaInstance
from repro.droute.samenet import (
    fix_min_segment_lengths,
    merge_collinear,
    min_area_deficits,
    min_segment_violations,
    postprocess_path,
)
from repro.droute.space import RoutingSpace
from repro.tech.wiring import StickFigure


@pytest.fixture(scope="module")
def space():
    spec = ChipSpec("sntest", rows=2, row_width_cells=4, net_count=4, seed=9)
    return RoutingSpace(generate_chip(spec))


class TestMergeCollinear:
    def test_merges_abutting(self):
        sticks = [
            StickFigure(3, 0, 100, 50, 100),
            StickFigure(3, 50, 100, 120, 100),
        ]
        merged = merge_collinear(sticks)
        assert merged == [StickFigure(3, 0, 100, 120, 100)]

    def test_merges_overlapping(self):
        sticks = [
            StickFigure(3, 0, 100, 80, 100),
            StickFigure(3, 40, 100, 120, 100),
        ]
        assert merge_collinear(sticks) == [StickFigure(3, 0, 100, 120, 100)]

    def test_keeps_disjoint(self):
        sticks = [
            StickFigure(3, 0, 100, 50, 100),
            StickFigure(3, 200, 100, 260, 100),
        ]
        assert len(merge_collinear(sticks)) == 2

    def test_keeps_different_layers(self):
        sticks = [
            StickFigure(3, 0, 100, 50, 100),
            StickFigure(5, 0, 100, 50, 100),
        ]
        assert len(merge_collinear(sticks)) == 2

    def test_point_absorbed_by_segment(self):
        sticks = [
            StickFigure(3, 0, 100, 50, 100),
            StickFigure(3, 25, 100, 25, 100),
        ]
        assert merge_collinear(sticks) == [StickFigure(3, 0, 100, 50, 100)]

    def test_lonely_point_survives(self):
        sticks = [StickFigure(3, 25, 100, 25, 100)]
        assert merge_collinear(sticks) == sticks

    def test_vertical_merge(self):
        sticks = [
            StickFigure(2, 100, 0, 100, 50),
            StickFigure(2, 100, 50, 100, 90),
        ]
        assert merge_collinear(sticks) == [StickFigure(2, 100, 0, 100, 90)]


class TestMinSegment:
    def test_violations_detected(self, space):
        tau = space.chip.rules.same_net_rules(3).min_segment_length
        short = StickFigure(3, 0, 120, tau - 10, 120)
        long = StickFigure(3, 0, 240, 2 * tau, 240)
        violations = min_segment_violations(space, [short, long])
        assert violations == [short]

    def test_points_exempt(self, space):
        point = StickFigure(3, 100, 100, 100, 100)
        assert min_segment_violations(space, [point]) == []

    def test_fix_extends_in_free_space(self, space):
        graph = space.graph
        z = 5
        y = graph.tracks[z][len(graph.tracks[z]) // 2]
        tau = space.chip.rules.same_net_rules(z).min_segment_length
        short = StickFigure(z, 2000, y, 2000 + tau - 20, y)
        fixed = fix_min_segment_lengths(space, "testnet", "default", [short])
        assert all(
            s.length >= tau or s.is_point for s in fixed
        ), f"still short: {fixed}"

    def test_postprocess_combines_merge_and_fix(self, space):
        graph = space.graph
        z = 5
        y = graph.tracks[z][1]
        pieces = [
            StickFigure(z, 2000, y, 2050, y),
            StickFigure(z, 2050, y, 2400, y),
        ]
        out = postprocess_path(space, "testnet", "default", pieces)
        assert len(out) == 1
        assert out[0].length == 400


class TestMinArea:
    def test_deficit_reported_for_tiny_route(self, space):
        route = NetRoute("tiny", "default")
        # A stub far shorter than min area requires: metal area
        # (20 + 2*20 line-end) x 40 = 4000 < 4800 required.
        route.add_wire(StickFigure(3, 2000, 2000, 2020, 2000))
        deficits = min_area_deficits(space, route)
        assert any(layer == 3 and missing > 0 for layer, missing in deficits)

    def test_no_deficit_for_long_route(self, space):
        route = NetRoute("long", "default")
        route.add_wire(StickFigure(3, 0, 2000, 4000, 2000))
        assert min_area_deficits(space, route) == []

    def test_via_pads_count_towards_area(self, space):
        route = NetRoute("viaonly", "default")
        route.add_via(ViaInstance(3, 2000, 2000))
        deficits = dict(min_area_deficits(space, route))
        # Pads alone are usually below minimum area: layers 3 and 4 are
        # reported, with the pad area already subtracted.
        for layer in (3, 4):
            if layer in deficits:
                required = space.chip.rules.same_net_rules(layer).min_area
                assert deficits[layer] < required
