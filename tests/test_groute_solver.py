"""Tests for resources, the Steiner oracle, resource sharing, rounding."""

import math

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.resources import (
    ResourceModel,
    power_usage,
    space_usage,
    yield_loss,
)
from repro.groute.rounding import RoundingPostprocessor
from repro.groute.router import GlobalRouter
from repro.groute.sharing import ResourceSharingSolver
from repro.groute.steiner_oracle import path_composition_steiner_tree
from repro.steiner.rsmt import steiner_length
from repro.util.unionfind import UnionFind


@pytest.fixture(scope="module")
def setup():
    chip = generate_chip(
        ChipSpec("gstest", rows=3, row_width_cells=6, net_count=10, seed=7)
    )
    plan = build_track_plan(chip)
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, plan)
    model = ResourceModel(graph, chip.nets)
    return chip, graph, model


class TestGammaFunctions:
    def test_space_linear(self):
        assert space_usage(1.0, 0.0) == 1.0
        assert space_usage(1.0, 2.0) == 3.0

    def test_power_decreasing_convex(self):
        values = [power_usage(100.0, s) for s in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert all(b < a for a, b in zip(values, values[1:]))
        # Convexity: second differences non-negative.
        diffs = [b - a for a, b in zip(values, values[1:])]
        assert all(d2 >= d1 - 1e-9 for d1, d2 in zip(diffs, diffs[1:]))

    def test_yield_decreasing_convex(self):
        values = [yield_loss(100.0, s) for s in (0.0, 1.0, 2.0, 4.0)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_fig1_shapes(self):
        """Fig. 1: space grows linearly, power and yield fall convexly."""
        spaces = [space_usage(1.0, s) for s in range(5)]
        assert [b - a for a, b in zip(spaces, spaces[1:])] == [1.0] * 4
        powers = [power_usage(1.0, float(s)) for s in range(5)]
        yields = [yield_loss(1.0, float(s)) for s in range(5)]
        assert powers[0] > powers[-1]
        assert yields[0] > yields[-1]


class TestResourceModel:
    def test_priced_cost_positive(self, setup):
        chip, graph, model = setup
        edge = next(e for e in graph.edges() if not graph.is_via_edge(e))
        cost, s = model.priced_edge_cost("n0", edge, 1.0, {"wirelength": 1e-6})
        assert cost > 0
        assert s >= 0

    def test_extra_space_grows_with_power_price(self, setup):
        chip, graph, model = setup
        edge = next(
            e for e in graph.edges()
            if not graph.is_via_edge(e) and graph.capacity(e) > 1
        )
        _c0, s_low = model.priced_edge_cost(
            "n0", edge, 1.0, {"power": 1e-9, "yield": 0.0}
        )
        _c1, s_high = model.priced_edge_cost(
            "n0", edge, 1.0, {"power": 10.0, "yield": 0.0}
        )
        assert s_high >= s_low

    def test_wide_nets_consume_more(self, setup):
        chip, graph, model = setup
        wide = next((n for n in chip.nets if n.wire_type == "wide"), None)
        if wide is None:
            pytest.skip("no wide net in this instance")
        assert model.net_width(wide.name) == 2.0

    def test_usage_includes_edge_and_globals(self, setup):
        chip, graph, model = setup
        edge = next(e for e in graph.edges() if not graph.is_via_edge(e))
        usage = model.edge_usage("n0", edge, 0.5)
        assert usage["space"] == 1.5
        assert usage["wirelength"] > 0
        assert usage["power"] > 0


class TestSteinerOracle:
    def _cost_fn(self, graph):
        def edge_cost(_net, edge):
            return float(max(graph.edge_length(edge), 40)), 0.0
        return edge_cost

    def test_two_terminal_path(self, setup):
        chip, graph, _model = setup
        terminals = [{(0, 0, 3)}, {(graph.nx - 1, 0, 3)}]
        result = path_composition_steiner_tree(
            graph, "t", terminals, self._cost_fn(graph)
        )
        assert result is not None
        assert result.edges

    def test_tree_connects_all_terminals(self, setup):
        chip, graph, _model = setup
        net = max(chip.nets, key=lambda n: n.terminal_count)
        terminals = graph.net_terminals(net)
        result = path_composition_steiner_tree(
            graph, net.name, terminals, self._cost_fn(graph)
        )
        assert result is not None
        uf = UnionFind()
        for a, b in result.edges:
            uf.union(a, b)
        roots = set()
        for terminal in terminals:
            root = None
            for node in terminal:
                if node in uf or result.edges:
                    root = uf.find(node)
                    break
            roots.add(root)
        assert len(roots) <= 1 or all(r is not None for r in roots)
        # Stronger: every terminal intersects the tree's node set or is
        # its own single-tile terminal.
        tree_nodes = set()
        for a, b in result.edges:
            tree_nodes.add(a)
            tree_nodes.add(b)
        for terminal in terminals:
            assert terminal & tree_nodes or len(terminals) == 1

    def test_goal_orientation_reduces_labels(self, setup):
        chip, graph, _model = setup
        terminals = [{(0, 0, 3)}, {(graph.nx - 1, graph.ny - 1, 4)}]
        blind = path_composition_steiner_tree(
            graph, "t", terminals, self._cost_fn(graph), potential_scale=0.0
        )
        oriented = path_composition_steiner_tree(
            graph, "t", terminals, self._cost_fn(graph), potential_scale=1.0
        )
        assert blind.cost == pytest.approx(oriented.cost)
        assert oriented.dijkstra_labels <= blind.dijkstra_labels


class TestResourceSharing:
    def test_lambda_near_one_on_feasible_instance(self, setup):
        chip, graph, model = setup
        solver = ResourceSharingSolver(graph, model, phases=15)
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        fractional = solver.solve(routable)
        assert 0.0 < fractional.max_congestion <= 1.5
        for net in routable:
            weights = fractional.weights[net.name]
            assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_more_phases_do_not_hurt(self, setup):
        chip, graph, model = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        few = ResourceSharingSolver(graph, model, phases=3).solve(routable)
        many = ResourceSharingSolver(graph, model, phases=20).solve(routable)
        assert many.max_congestion <= few.max_congestion * 1.25

    def test_reuse_speeds_up_without_hurting(self, setup):
        chip, graph, model = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        strict = ResourceSharingSolver(
            graph, model, phases=10, reuse_threshold=1.0
        ).solve(routable)
        loose = ResourceSharingSolver(
            graph, model, phases=10, reuse_threshold=2.5
        ).solve(routable)
        assert loose.oracle_calls <= strict.oracle_calls
        assert loose.max_congestion <= strict.max_congestion * 1.3


class TestRounding:
    def test_rounding_deterministic_per_seed(self, setup):
        chip, graph, model = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        fractional = ResourceSharingSolver(graph, model, phases=10).solve(routable)
        r1 = RoundingPostprocessor(graph, model, seed=5).round(fractional)
        r2 = RoundingPostprocessor(graph, model, seed=5).round(fractional)
        assert {n: r.edges for n, r in r1.items()} == {
            n: r.edges for n, r in r2.items()
        }

    def test_repair_reduces_violations(self, setup):
        chip, graph, model = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        fractional = ResourceSharingSolver(graph, model, phases=10).solve(routable)
        post = RoundingPostprocessor(graph, model, seed=5)
        routes = post.round(fractional)
        routes = post.repair(routes, fractional, routable)
        assert post.stats.final_violations <= max(post.stats.initial_violations, 0)


class TestGlobalRouter:
    def test_end_to_end(self):
        chip = generate_chip(
            ChipSpec("grend", rows=3, row_width_cells=6, net_count=10, seed=7)
        )
        router = GlobalRouter(chip, phases=10, seed=1)
        result = router.run()
        non_local = [n for n in chip.nets if n.name not in result.local_nets]
        assert set(result.routes) == {n.name for n in non_local}
        assert result.wire_length() > 0

    def test_detour_ratios_reasonable(self):
        chip = generate_chip(
            ChipSpec("grdet", rows=3, row_width_cells=6, net_count=10, seed=7)
        )
        result = GlobalRouter(chip, phases=10, seed=1).run()
        for name in result.routes:
            ratio = result.corridor_detour(name)
            assert 1.0 <= ratio < 4.0, f"{name}: detour {ratio}"

    def test_corridors_cover_pins(self):
        chip = generate_chip(
            ChipSpec("grcorr", rows=3, row_width_cells=6, net_count=10, seed=7)
        )
        result = GlobalRouter(chip, phases=10, seed=1).run()
        for name, route in result.routes.items():
            area = result.corridor(name, margin_tiles=1)
            net = chip.net(name)
            covered = 0
            for pin in net.pins:
                x, y = pin.reference_point()
                layer = pin.layers[0]
                if area.contains(x, y, layer):
                    covered += 1
            assert covered >= len(net.pins) - 1, f"{name} corridor misses pins"
