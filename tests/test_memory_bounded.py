"""Memory-bounded routing spaces: lazy fixed rows, LRU pin-access memo.

Laziness and eviction are *capacity* knobs, never *result* knobs: the
tests here pin that down by comparing wiring and shape-grid content
across lazy/eager spaces and across memo-capacity extremes.
"""

import pytest

from repro.chip.cells import example_cell_library
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.util.rng import make_rng


QUICK_SPEC = ChipSpec("memtest", rows=2, row_width_cells=5, net_count=8, seed=101)


def canonical_routes(routes):
    return {
        name: (
            tuple(
                (tn, level, s.layer, s.x0, s.y0, s.x1, s.y1)
                for s, level, tn in route.wire_items()
            ),
            tuple(
                (tn, level, v.via_layer, v.x, v.y)
                for v, level, tn in route.via_items()
            ),
        )
        for name, route in routes.items()
    }


def canonical_paths(paths):
    return [
        (p.layer, p.endpoint, p.length, tuple(p.points), p.via is None)
        for p in paths
    ]


class TestLazyFixedRows:
    def test_lazy_space_defers_fixed_geometry(self):
        chip = generate_chip(QUICK_SPEC)
        lazy = RoutingSpace(chip, lazy_fixed=True)
        assert lazy.shape_grid.pending_fixed_count() > 0
        assert lazy.shape_grid.materialized_row_count() == 0

    def test_lazy_queries_match_eager(self):
        chip = generate_chip(QUICK_SPEC)
        lazy = RoutingSpace(chip, lazy_fixed=True)
        eager = RoutingSpace(chip, lazy_fixed=False)
        assert eager.shape_grid.pending_fixed_count() == 0
        rng = make_rng(17)
        die = chip.die
        for _ in range(100):
            x = rng.randrange(die.x_lo, die.x_hi - 200)
            y = rng.randrange(die.y_lo, die.y_hi - 200)
            window = Rect(x, y, x + rng.randrange(40, 1200), y + rng.randrange(40, 1200))
            def entries(space, kind, layer):
                return [
                    (
                        e.rect,
                        e.net,
                        e.class_name,
                        e.shape_kind,
                        e.ripup_level,
                        e.rule_width,
                    )
                    for e in space.shape_grid.query(kind, layer, window)
                ]

            for kind, layer in sorted(eager.shape_grid._grids):
                # Ordered comparison on purpose: downstream consumers
                # (DRC sweeps, access-path tie-breaks) see the query
                # *stream*, so lazy materialization must reproduce the
                # eager yield order exactly, not just the same set.
                assert entries(lazy, kind, layer) == entries(eager, kind, layer)
        assert lazy.shape_grid.materialized_row_count() > 0

    def test_full_materialization_matches_interval_counts(self):
        chip = generate_chip(QUICK_SPEC)
        lazy = RoutingSpace(chip, lazy_fixed=True)
        eager = RoutingSpace(chip, lazy_fixed=False)
        die = chip.die
        for kind, layer in sorted(eager.shape_grid._grids):
            lazy.shape_grid.query(kind, layer, die)
        for kind, layer in sorted(eager.shape_grid._grids):
            assert lazy.shape_grid.interval_count(kind, layer) == (
                eager.shape_grid.interval_count(kind, layer)
            )
        assert lazy.shape_grid.pending_fixed_count() == 0

    def test_env_var_controls_default(self, monkeypatch):
        chip = generate_chip(QUICK_SPEC)
        monkeypatch.setenv("REPRO_LAZY_ROWS", "0")
        assert RoutingSpace(chip).lazy_fixed is False
        monkeypatch.setenv("REPRO_LAZY_ROWS", "1")
        assert RoutingSpace(chip).lazy_fixed is True


class TestRoutingBitIdentity:
    @pytest.fixture(scope="class")
    def chip(self):
        return generate_chip(
            ChipSpec("memroute", rows=2, row_width_cells=4, net_count=6, seed=7)
        )

    def _route(self, chip, monkeypatch, lazy_env, memo_cap=None):
        from repro.flow.bonnroute import BonnRouteFlow

        monkeypatch.setenv("REPRO_LAZY_ROWS", lazy_env)
        if memo_cap is not None:
            monkeypatch.setenv("REPRO_PINACCESS_MEMO_CAP", str(memo_cap))
        result = BonnRouteFlow(chip, gr_phases=6, seed=1).run()
        return canonical_routes(result.space.routes)

    def test_lazy_rows_do_not_change_wiring(self, chip, monkeypatch):
        lazy = self._route(chip, monkeypatch, "1")
        eager = self._route(chip, monkeypatch, "0")
        assert lazy == eager

    def test_memo_eviction_pressure_does_not_change_wiring(
        self, chip, monkeypatch
    ):
        relaxed = self._route(chip, monkeypatch, "1")
        # Capacity 1 forces an eviction on virtually every catalogue
        # store: the cold, warm and thrashing paths must agree.
        pressured = self._route(chip, monkeypatch, "1", memo_cap=1)
        assert relaxed == pressured


class TestPinAccessMemoLru:
    @pytest.fixture()
    def space(self):
        return RoutingSpace(generate_chip(QUICK_SPEC))

    def test_capacity_bounds_memo(self, space):
        planner = PinAccessPlanner(space, memo_capacity=1)
        pins = [net.pins[0] for net in space.chip.nets[:3]]
        for pin in pins:
            planner.build_catalogue(pin)
            assert len(planner._catalogue_memo) <= 1

    def test_eviction_rebuild_is_identical(self, space):
        planner = PinAccessPlanner(space, memo_capacity=1)
        pin_a = space.chip.nets[0].pins[0]
        pin_b = space.chip.nets[1].pins[0]
        cold = canonical_paths(planner.build_catalogue(pin_a))
        planner.build_catalogue(pin_b)  # evicts pin_a's entry
        rebuilt = canonical_paths(planner.build_catalogue(pin_a))
        assert rebuilt == cold

    def test_warm_hit_matches_cold(self, space):
        planner = PinAccessPlanner(space)
        pin = space.chip.nets[0].pins[0]
        cold = canonical_paths(planner.build_catalogue(pin))
        warm = canonical_paths(planner.build_catalogue(pin))
        assert warm == cold

    def test_env_var_controls_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_PINACCESS_MEMO_CAP", "17")
        space = RoutingSpace(generate_chip(QUICK_SPEC))
        assert PinAccessPlanner(space).memo_capacity == 17


class TestLibraryInterning:
    def test_same_parameters_share_templates(self):
        first = example_cell_library()
        second = example_cell_library()
        assert first is not second  # fresh list...
        assert all(a is b for a, b in zip(first, second))  # ...shared templates

    def test_different_parameters_do_not_share(self):
        default = example_cell_library()
        other = example_cell_library(pin_size=48)
        assert all(a is not b for a, b in zip(default, other))
