"""Tests for the DRC checker, the baseline ISR, and both end-to-end flows."""

import pytest

from repro.baseline.cleanup import DrcCleanup
from repro.baseline.isr_detailed import IsrDetailedRouter
from repro.baseline.isr_global import IsrGlobalRouter
from repro.chip.generator import ChipSpec, generate_chip
from repro.drc.checker import DrcChecker
from repro.droute.space import RoutingSpace
from repro.flow.bonnroute import BonnRouteFlow
from repro.flow.isr_flow import IsrFlow
from repro.flow.stats import collect_metrics, scenic_nets
from repro.tech.wiring import StickFigure

SPEC = ChipSpec("flowtest", rows=3, row_width_cells=6, net_count=10, seed=7)


@pytest.fixture(scope="module")
def br_result():
    return BonnRouteFlow(generate_chip(SPEC), gr_phases=10, seed=1).run()


@pytest.fixture(scope="module")
def isr_result():
    return IsrFlow(generate_chip(SPEC)).run()


class TestDrcChecker:
    def test_empty_chip_no_violations(self):
        chip = generate_chip(ChipSpec("drc0", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        report = DrcChecker(space).run()
        assert report.violations == []
        # Unrouted nets: each pin is its own component.
        expected_opens = sum(n.terminal_count - 1 for n in chip.nets)
        assert report.opens == expected_opens

    def test_detects_planted_spacing_violation(self):
        chip = generate_chip(ChipSpec("drc1", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        z = 5
        y = space.graph.tracks[z][2]
        space.add_wire("a_net", "default", StickFigure(z, 1000, y, 2000, y))
        # 20 dbu below the required 80 spacing of the thick layer.
        space.add_wire("b_net", "default", StickFigure(z, 1000, y + 80 + 60, 2000, y + 80 + 60))
        report = DrcChecker(space).run(same_net=False, opens=False)
        assert any(
            v.kind == "spacing" and set(v.nets) == {"a_net", "b_net"}
            for v in report.violations
        )

    def test_detects_min_segment(self):
        chip = generate_chip(ChipSpec("drc2", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        space.add_wire("s_net", "default", StickFigure(5, 1000, 1000, 1050, 1000))
        report = DrcChecker(space).run(spacing=False, opens=False)
        assert any(v.kind == "min_segment" for v in report.violations)

    def test_no_false_positives_on_legal_pair(self):
        chip = generate_chip(ChipSpec("drc3", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        z = 5
        y = space.graph.tracks[z][2]
        space.add_wire("a_net", "default", StickFigure(z, 1000, y, 3000, y))
        space.add_wire("b_net", "default", StickFigure(z, 1000, y + 160, 3000, y + 160))
        report = DrcChecker(space).run(same_net=False, opens=False)
        spacing = [v for v in report.violations if set(v.nets) == {"a_net", "b_net"}]
        assert spacing == []


class TestBaselineIsr:
    def test_isr_global_runs(self):
        chip = generate_chip(SPEC)
        result = IsrGlobalRouter(chip).run()
        assert result.routes
        assert result.wire_length() > 0

    def test_isr_layer_assignment_produces_vias(self):
        chip = generate_chip(SPEC)
        result = IsrGlobalRouter(chip).run()
        assert result.via_count() > 0

    def test_isr_detailed_runs(self):
        chip = generate_chip(ChipSpec("isrd", rows=2, row_width_cells=4, net_count=5, seed=3))
        space = RoutingSpace(chip)
        router = IsrDetailedRouter(space, track_assignment=True)
        result = router.run()
        assert len(result.routed) >= len(chip.nets) - 2


class TestCleanup:
    def test_cleanup_reduces_or_keeps_errors(self, br_result):
        # The flow already ran cleanup; rerunning must not increase errors.
        space = br_result.space
        before = DrcChecker(space).run().error_count
        report = DrcCleanup(space, max_passes=1).run()
        assert report.remaining_errors <= before + 2


class TestFlows:
    def test_br_flow_routes_everything(self, br_result):
        detailed = br_result.detailed_result
        assert len(detailed.failed) <= 1
        assert br_result.metrics is not None

    def test_br_metrics_structure(self, br_result):
        row = br_result.metrics.as_dict()
        for key in ("chip", "netlength", "vias", "scenic_25", "scenic_50",
                    "errors", "time_total_s", "time_br_s", "memory_mb"):
            assert key in row
        assert row["time_br_s"] <= row["time_total_s"]

    def test_isr_flow_runs(self, isr_result):
        assert isr_result.metrics is not None
        assert isr_result.metrics.netlength > 0

    def test_table1_shape_netlength(self, br_result, isr_result):
        """Table I's headline: BR+ISR netlength below ISR's."""
        assert br_result.metrics.netlength < isr_result.metrics.netlength

    def test_table1_shape_scenics(self, br_result, isr_result):
        assert (
            br_result.metrics.scenic_25 <= isr_result.metrics.scenic_25 + 1
        )

    def test_scenic_nets_monotone_in_threshold(self, br_result):
        space = br_result.space
        assert len(scenic_nets(space, 0.50)) <= len(scenic_nets(space, 0.25))

    def test_collect_metrics_counts_errors(self, br_result):
        metrics = collect_metrics(br_result.space, runtime_total=1.0)
        assert metrics.errors == metrics.drc_report.error_count


class TestNotchRule:
    def test_planted_notch_detected(self):
        chip = generate_chip(ChipSpec("notch1", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        z = 5
        y = space.graph.tracks[z][2]
        # Two parallel same-net arms whose metal gap (60) is below the
        # notch spacing (80) - the U-shape of Sec. 3.7.
        space.add_wire("u_net", "default", StickFigure(z, 1000, y, 2000, y))
        space.add_wire("u_net", "default", StickFigure(z, 1000, y + 140, 2000, y + 140))
        report = DrcChecker(space).run(spacing=False, opens=False)
        assert any(v.kind == "notch" for v in report.violations)

    def test_touching_pieces_are_not_notches(self):
        chip = generate_chip(ChipSpec("notch2", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        z = 5
        y = space.graph.tracks[z][2]
        # An L: the pieces touch, so they are one polygon, not a notch.
        space.add_wire("l_net", "default", StickFigure(z, 1000, y, 2000, y))
        space.add_wire("l_net", "default", StickFigure(z, 2000, y, 2000, y + 480))
        report = DrcChecker(space).run(spacing=False, opens=False)
        assert not any(v.kind == "notch" for v in report.violations)

    def test_far_pieces_are_clean(self):
        chip = generate_chip(ChipSpec("notch3", rows=2, row_width_cells=4, net_count=4, seed=2))
        space = RoutingSpace(chip)
        z = 5
        y = space.graph.tracks[z][2]
        space.add_wire("f_net", "default", StickFigure(z, 1000, y, 2000, y))
        space.add_wire("f_net", "default", StickFigure(z, 1000, y + 320, 2000, y + 320))
        report = DrcChecker(space).run(spacing=False, opens=False)
        assert not any(v.kind == "notch" for v in report.violations)


class TestPrerouting:
    def test_preroute_covers_local_nets(self):
        chip = generate_chip(ChipSpec("pre1", rows=3, row_width_cells=6, net_count=10, seed=7))
        flow = BonnRouteFlow(chip, gr_phases=8, seed=1, cleanup=False)
        result = flow.run()
        # Every net the global router classified local was routed.
        assert result.global_result.local_nets <= result.detailed_result.routed

    def test_preroute_reduces_capacity(self):
        """Pre-routed wiring must lower the affected tiles' capacities."""
        from repro.grid.tracks import build_track_plan
        from repro.groute.capacity import estimate_capacities
        from repro.groute.graph import GlobalRoutingGraph
        from repro.geometry.rect import Rect

        chip = generate_chip(ChipSpec("pre2", rows=3, row_width_cells=6, net_count=10, seed=7))
        plan = build_track_plan(chip)
        plain = GlobalRoutingGraph(chip)
        estimate_capacities(plain, plan)
        blocked = GlobalRoutingGraph(chip)
        # A fat fake pre-route crossing the middle of the die on M3.
        die = chip.die
        mid_y = (die.y_lo + die.y_hi) // 2
        estimate_capacities(
            blocked, plan,
            extra_obstacles=[(3, Rect(die.x_lo, mid_y - 200, die.x_hi, mid_y + 200))],
        )
        reduced = [
            e for e in plain.capacities
            if blocked.capacities[e] < plain.capacities[e] - 1e-9
        ]
        assert reduced, "extra obstacles must reduce some capacities"
        assert all(
            blocked.capacities[e] <= plain.capacities[e] + 1e-9
            for e in plain.capacities
        )
