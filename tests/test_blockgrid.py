"""Tests for the blockage grid and tau-feasible shortest paths (Sec. 3.8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.grid.blockgrid import (
    BlockageGrid,
    blockage_grid_coordinates,
    min_segment_length,
    path_segments,
)


def _grid(obstacles, tau, bbox, terminals):
    return BlockageGrid(obstacles, tau, bbox, terminals)


class TestCoordinates:
    def test_includes_terminals_and_borders(self):
        xs, ys = blockage_grid_coordinates(
            [Rect(100, 100, 200, 200)], [(10, 20), (300, 310)], tau=40,
            bbox=Rect(0, 0, 400, 400),
        )
        for coord in (10, 100, 200, 300):
            assert coord in xs
        for coord in (20, 100, 200, 310):
            assert coord in ys

    def test_tau_refinement_present(self):
        xs, _ys = blockage_grid_coordinates(
            [Rect(100, 0, 130, 10)], [(0, 0)], tau=40, bbox=Rect(0, 0, 400, 400)
        )
        # 100 and 130 are closer than 4*tau: tau-offsets appear around them.
        assert 100 + 40 in xs
        assert 130 + 40 in xs

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            BlockageGrid([], 0, Rect(0, 0, 10, 10))


class TestShortestPath:
    def test_straight_line(self):
        grid = _grid([], 40, Rect(0, 0, 1000, 1000), [(0, 0), (500, 0)])
        result = grid.shortest_path([(0, 0)], [(500, 0)])
        assert result is not None
        length, points = result
        assert length == 500
        assert points[0] == (0, 0) and points[-1] == (500, 0)

    def test_l_shape(self):
        grid = _grid([], 40, Rect(0, 0, 1000, 1000), [(0, 0), (300, 400)])
        length, points = grid.shortest_path([(0, 0)], [(300, 400)])
        assert length == 700
        assert min_segment_length(points) >= 40

    def test_source_equals_target(self):
        grid = _grid([], 40, Rect(0, 0, 100, 100), [(50, 50)])
        assert grid.shortest_path([(50, 50)], [(50, 50)]) == (0, [(50, 50)])

    def test_detours_around_obstacle(self):
        wall = Rect(200, 0, 240, 800)
        grid = _grid([wall], 40, Rect(0, 0, 1000, 1000), [(0, 400), (500, 400)])
        length, points = grid.shortest_path([(0, 400)], [(500, 400)])
        # Must climb over the wall: detour of 2 * (800 - 400).
        assert length == 500 + 2 * 400
        for a, b in path_segments(points):
            seg = Rect.from_points(a[0], a[1], b[0], b[1])
            assert not seg.intersects_open(wall)

    def test_no_path_when_walled_in(self):
        walls = [
            Rect(100, 100, 400, 140),
            Rect(100, 360, 400, 400),
            Rect(100, 100, 140, 400),
            Rect(360, 100, 400, 400),
        ]
        grid = _grid(walls, 40, Rect(0, 0, 500, 500), [(250, 250), (450, 450)])
        assert grid.shortest_path([(250, 250)], [(450, 450)]) is None

    def test_minimum_segment_length_enforced(self):
        """Fig. 5 scenario: narrow offset forces tau-long segments."""
        tau = 100
        # Target offset by only 20 in y: a geometric shortest path would
        # use a 20-long jog, violating tau.
        grid = _grid([], tau, Rect(0, 0, 2000, 2000), [(0, 0), (500, 20)])
        result = grid.shortest_path([(0, 0)], [(500, 20)])
        assert result is not None
        length, points = result
        assert min_segment_length(points) >= tau
        # The path is longer than the l1 distance (it must overshoot).
        assert length > 520

    def test_path_segments_all_tau_long(self):
        tau = 80
        obstacles = [Rect(300, 0, 380, 500), Rect(600, 200, 680, 1000)]
        grid = _grid(
            obstacles, tau, Rect(0, 0, 1000, 1000), [(0, 600), (900, 100)]
        )
        result = grid.shortest_path([(0, 600)], [(900, 100)])
        assert result is not None
        _length, points = result
        assert min_segment_length(points) >= tau

    def test_multiple_sources_and_targets(self):
        grid = _grid(
            [], 40, Rect(0, 0, 1000, 1000),
            [(0, 0), (0, 900), (800, 0), (900, 900)],
        )
        length, points = grid.shortest_path(
            [(0, 0), (0, 900)], [(800, 0), (900, 900)]
        )
        # Closest pair is (0,0)-(800,0).
        assert length == 800

    def test_off_grid_terminal_raises(self):
        grid = _grid([], 40, Rect(0, 0, 100, 100), [(0, 0)])
        with pytest.raises(ValueError):
            grid.shortest_path([(0, 0)], [(33, 33)])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 900), st.integers(0, 900),
        st.integers(0, 900), st.integers(0, 900),
    )
    def test_lower_bound_is_l1(self, x0, y0, x1, y1):
        tau = 50
        grid = _grid([], tau, Rect(0, 0, 1000, 1000), [(x0, y0), (x1, y1)])
        result = grid.shortest_path([(x0, y0)], [(x1, y1)])
        l1 = abs(x0 - x1) + abs(y0 - y1)
        if result is None:
            return
        length, points = result
        assert length >= l1
        assert min_segment_length(points) >= tau or length == 0
        # In unobstructed space with both offsets >= tau (or zero), the
        # path achieves the l1 distance exactly.
        dx, dy = abs(x0 - x1), abs(y0 - y1)
        if (dx == 0 or dx >= tau) and (dy == 0 or dy >= tau):
            assert length == l1
