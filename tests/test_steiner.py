"""Tests for the Steiner-length baselines (the FLUTE stand-in)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.steiner.rsmt import (
    exact_steiner_length,
    heuristic_steiner_length,
    rectilinear_mst_length,
    steiner_length,
)

point = st.tuples(st.integers(0, 200), st.integers(0, 200))


class TestMst:
    def test_two_points(self):
        assert rectilinear_mst_length([(0, 0), (3, 4)]) == 7

    def test_duplicates_ignored(self):
        assert rectilinear_mst_length([(0, 0), (0, 0), (5, 0)]) == 5

    def test_single_point(self):
        assert rectilinear_mst_length([(1, 1)]) == 0

    def test_collinear(self):
        assert rectilinear_mst_length([(0, 0), (10, 0), (25, 0)]) == 25


class TestExact:
    def test_two_points_l1(self):
        assert exact_steiner_length([(0, 0), (7, 5)]) == 12

    def test_three_point_star(self):
        # Median point (5, 0): 5 + 5 + 8.
        assert exact_steiner_length([(0, 0), (10, 0), (5, 8)]) == 18

    def test_four_corners(self):
        # Classic: 4 corners of a square need 3 * side.
        assert exact_steiner_length([(0, 0), (10, 0), (0, 10), (10, 10)]) == 30

    def test_cross(self):
        points = [(5, 0), (5, 10), (0, 5), (10, 5)]
        assert exact_steiner_length(points) == 20

    def test_never_exceeds_mst(self):
        points = [(0, 0), (10, 3), (4, 9), (12, 12), (1, 7)]
        assert exact_steiner_length(points) <= rectilinear_mst_length(points)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(point, min_size=2, max_size=5, unique=True))
    def test_exact_bounds(self, points):
        exact = exact_steiner_length(points)
        mst = rectilinear_mst_length(points)
        assert exact <= mst
        # Hwang bound: MST <= 1.5 * RSMT.
        assert mst <= 1.5 * exact + 1e-9
        # RSMT at least half the bounding box perimeter... actually at
        # least the bounding box half-perimeter for connected trees.
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert exact >= (max(xs) - min(xs)) + (max(ys) - min(ys)) - 0  # HPWL lower bound
        # HPWL is only a lower bound for <= 3 terminals; use generic
        # sanity: positive unless all points coincide.
        if len(set(points)) > 1:
            assert exact > 0


class TestHeuristic:
    def test_improves_over_mst_on_corners(self):
        points = [(0, 0), (10, 0), (0, 10), (10, 10)]
        assert heuristic_steiner_length(points) == 30
        assert rectilinear_mst_length(points) == 30  # MST already 30 here

    def test_improves_star(self):
        points = [(0, 0), (10, 0), (5, 8)]
        assert heuristic_steiner_length(points) == 18

    @settings(max_examples=20, deadline=None)
    @given(st.lists(point, min_size=2, max_size=7, unique=True))
    def test_heuristic_between_exact_and_mst(self, points):
        exact = exact_steiner_length(points)
        heuristic = heuristic_steiner_length(points)
        mst = rectilinear_mst_length(points)
        assert exact <= heuristic <= mst


class TestDispatcher:
    def test_small_uses_exact(self):
        points = [(0, 0), (10, 0), (0, 10), (10, 10)]
        assert steiner_length(points) == exact_steiner_length(points)

    def test_large_terminal_count(self):
        points = [(i * 13 % 97, i * 29 % 83) for i in range(15)]
        value = steiner_length(points)
        assert 0 < value <= rectilinear_mst_length(points)

    def test_cached(self):
        points = [(0, 0), (50, 60), (10, 90)]
        assert steiner_length(points) == steiner_length(list(reversed(points)))
