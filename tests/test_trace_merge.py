"""Deterministic trace-merge tests for parallel runs (repro-trace v2).

A traced ``--workers N`` flow must produce ONE schema-valid v2 trace
whose merged span tree is identical to the serial run's, modulo
timings and the worker lanes the spans ran in.  The pool machinery
adds its own ``pool.*`` spans; the canonical-tree comparison lifts
worker spans over them so serial and parallel trees align.
"""

import json

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute import pool
from repro.flow.bonnroute import BonnRouteFlow
from repro.flow.faults import FaultPlan, FaultSpec
from repro.obs import OBS, JsonlTraceSink
from repro.obs.report import build_report
from repro.obs.schema import validate_trace_lines

POOL_SPEC = ChipSpec("pooltest", rows=3, row_width_cells=6, net_count=12, seed=11)

needs_fork = pytest.mark.skipif(
    not pool.fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def _clean_observer():
    OBS.reset()
    OBS.enabled = False
    yield
    OBS.close()
    OBS.reset()
    OBS.enabled = False


def run_traced_flow(tmp_path, workers, fault_plan=None):
    """One traced flow run; returns ``(flow_result, trace_records)``."""
    trace_path = tmp_path / f"trace_w{workers}.jsonl"
    OBS.reset()
    OBS.configure(enabled=True, sink=JsonlTraceSink(str(trace_path)))
    chip = generate_chip(POOL_SPEC)
    # Prerouting would absorb the local nets and leave the partition
    # rounds single-region — the pool never forks on a chip this small.
    result = BonnRouteFlow(
        chip,
        gr_phases=4,
        seed=1,
        cleanup=False,
        workers=workers,
        preroute_local_nets=False,
        fault_plan=fault_plan,
    ).run()
    OBS.close()
    OBS.enabled = False
    lines = trace_path.read_text(encoding="utf-8").splitlines()
    assert validate_trace_lines(list(lines)) == []
    return result, [json.loads(line) for line in lines]


def spans_of(records):
    return [r for r in records if r.get("type") == "span"]


def canonical_tree(records):
    """The span forest with ``pool.*`` plumbing spans elided.

    Worker spans are parented to the ``pool.round`` span of their
    round; serial runs have no such span.  Lifting every span over its
    ``pool.*`` ancestors (and dropping the pool spans themselves)
    yields a tree that must be identical for any worker count.  Nodes
    compare on ``(name, attrs, children)`` — no timings, ids or lanes.
    """
    by_id = {s["id"]: s for s in spans_of(records)}

    def effective_parent(span):
        parent = span.get("parent")
        while parent is not None:
            node = by_id.get(parent)
            if node is None:
                return None
            if not str(node["name"]).startswith("pool."):
                return parent
            parent = node.get("parent")
        return None

    children = {}
    roots = []
    for span in by_id.values():
        if str(span["name"]).startswith("pool."):
            continue
        parent = effective_parent(span)
        if parent is None:
            roots.append(span["id"])
        else:
            children.setdefault(parent, []).append(span["id"])

    def node(span_id):
        span = by_id[span_id]
        attrs = tuple(
            sorted((k, str(v)) for k, v in (span.get("attrs") or {}).items())
        )
        kids = tuple(sorted(node(kid) for kid in children.get(span_id, [])))
        return (span["name"], attrs, kids)

    return tuple(sorted(node(root) for root in roots))


@needs_fork
class TestParallelTraceV2:
    def test_workers_two_trace_is_valid_and_multi_process(self, tmp_path):
        _, records = run_traced_flow(tmp_path, workers=2)
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["version"] == 2
        assert meta["trace_id"]
        spans = spans_of(records)
        worker_spans = [s for s in spans if s.get("process") == "worker"]
        assert worker_spans, "no worker spans shipped back to the parent"
        assert len({s["worker"] for s in worker_spans}) >= 2
        ids = {s["id"] for s in spans}
        for span in spans:
            assert span.get("parent") is None or span["parent"] in ids
        # Worker roots graft onto the round span that forked them.
        round_ids = {s["id"] for s in spans if s["name"] == "pool.round"}
        grafted = [s for s in worker_spans if s.get("parent") in round_ids]
        assert grafted, "worker spans never attached to a pool.round span"

    def test_span_tree_identical_for_any_worker_count(self, tmp_path):
        trees = {}
        for workers in (1, 2, 4):
            _, records = run_traced_flow(tmp_path, workers=workers)
            trees[workers] = canonical_tree(records)
        assert trees[2] == trees[1]
        assert trees[4] == trees[1]

    def test_report_renders_one_lane_per_worker(self, tmp_path):
        _, records = run_traced_flow(tmp_path, workers=2)
        html = build_report("lanes", trace_records=records)
        assert 'data-lane="main"' in html
        assert 'data-lane="worker-0"' in html
        assert 'data-lane="worker-1"' in html

    def test_serial_trace_has_no_lane_rows(self, tmp_path):
        _, records = run_traced_flow(tmp_path, workers=1)
        html = build_report("lanes", trace_records=records)
        assert "data-lane" not in html


@needs_fork
class TestCrashFlightDump:
    def test_worker_crash_dumps_flight_ring_with_obs_off(self):
        # OBS stays disabled: the flight recorder is always-on and must
        # land its ring in the failure report without any tracing.
        chip = generate_chip(POOL_SPEC)
        names = [net.name for net in chip.nets]
        plan = FaultPlan(
            [FaultSpec("worker", nets=names, kind="kill")], seed=5
        )
        result = BonnRouteFlow(
            chip,
            gr_phases=4,
            seed=1,
            cleanup=False,
            workers=2,
            preroute_local_nets=False,
            fault_plan=plan,
        ).run()
        report = result.failure_report
        crashes = [
            e for e in report.pool_events if e["kind"] == "worker_crash"
        ]
        assert crashes, report.pool_events
        flight = crashes[0].get("flight")
        assert flight, "worker_crash event carries no flight-ring dump"
        assert any(
            r.get("name") == "pool.worker_crash" for r in flight
        )
        assert report.flight_recorder
        assert report.as_dict()["flight_recorder"] == report.flight_recorder
