"""Tests for the rectilinear geometry substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hanan import hanan_coordinates, refine_with_pitch
from repro.geometry.interval import Interval, merge_intervals, total_covered_length
from repro.geometry.l1 import (
    l1_distance,
    projection_overlap,
    rect_l1_distance,
    rect_l2_gap,
    rect_linf_gap,
    rect_width,
    run_length,
)
from repro.geometry.polygon import (
    boundary_edges,
    merge_rects,
    min_polygon_width,
    polygon_width_at,
    rectilinear_area,
)
from repro.geometry.rect import Rect, subtract_rect

rect_strategy = st.builds(
    Rect.from_points,
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.integers(-50, 50),
)


class TestInterval:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_contains_and_len(self):
        iv = Interval(2, 5)
        assert 2 in iv and 5 in iv and 6 not in iv
        assert len(iv) == 4
        assert iv.length == 3

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).intersection(Interval(3, 9)) is None

    def test_subtract(self):
        pieces = Interval(0, 10).subtract(Interval(3, 6))
        assert pieces == [Interval(0, 2), Interval(7, 10)]
        assert Interval(0, 10).subtract(Interval(-1, 11)) == []

    def test_merge_intervals_coalesces_adjacent(self):
        assert merge_intervals([(0, 2), (3, 5), (8, 9)]) == [(0, 5), (8, 9)]

    def test_total_covered_length(self):
        assert total_covered_length([(0, 10), (5, 20)]) == 20


class TestRect:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 5)

    def test_closed_intersection_on_border(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(10, 0, 20, 10)
        assert a.intersects(b)
        assert not a.intersects_open(b)

    def test_intersection_rect(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersection(b) == Rect(5, 5, 10, 10)

    def test_expanded(self):
        assert Rect(0, 0, 4, 4).expanded(2) == Rect(-2, -2, 6, 6)
        assert Rect(0, 0, 4, 4).expanded(1, 3) == Rect(-1, -3, 5, 7)

    def test_minkowski_sum(self):
        stick = Rect(0, 0, 100, 0)
        model = Rect(-20, -20, 20, 20)
        assert stick.minkowski_sum(model) == Rect(-20, -20, 120, 20)

    def test_bounding(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, -3, 6, 2)]
        assert Rect.bounding(rects) == Rect(0, -3, 6, 2)
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_subtract_rect_full_cover(self):
        assert subtract_rect(Rect(0, 0, 5, 5), Rect(-1, -1, 6, 6)) == []

    def test_subtract_rect_no_overlap(self):
        base = Rect(0, 0, 5, 5)
        assert subtract_rect(base, Rect(10, 10, 20, 20)) == [base]

    def test_subtract_rect_centre_hole(self):
        pieces = subtract_rect(Rect(0, 0, 10, 10), Rect(3, 3, 7, 7))
        assert len(pieces) == 4
        assert sum(p.area for p in pieces) == 100 - 16

    @settings(max_examples=60, deadline=None)
    @given(rect_strategy, rect_strategy)
    def test_subtract_rect_area_invariant(self, base, hole):
        pieces = subtract_rect(base, hole)
        clip = base.intersection(hole)
        overlap = clip.area if clip is not None and base.intersects_open(hole) else 0
        assert sum(p.area for p in pieces) == base.area - overlap


class TestDistances:
    def test_l1_distance(self):
        assert l1_distance((0, 0), (3, 4)) == 7

    def test_rect_gaps(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(13, 14, 20, 20)
        assert rect_l1_distance(a, b) == 3 + 4
        assert rect_l2_gap(a, b) == 5.0
        assert rect_linf_gap(a, b) == 4

    def test_gap_zero_when_touching(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(10, 10, 20, 20)
        assert rect_l2_gap(a, b) == 0.0

    def test_run_length_parallel(self):
        a = Rect(0, 0, 100, 10)
        b = Rect(20, 30, 80, 40)
        assert run_length(a, b) == 60
        assert projection_overlap(a, b, "x") == 60
        assert projection_overlap(a, b, "y") == 0

    def test_run_length_diagonal_is_zero(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(20, 20, 30, 30)
        assert run_length(a, b) == 0

    def test_rect_width(self):
        assert rect_width(Rect(0, 0, 100, 20)) == 20

    @settings(max_examples=60, deadline=None)
    @given(rect_strategy, rect_strategy)
    def test_gap_symmetry(self, a, b):
        assert rect_l2_gap(a, b) == rect_l2_gap(b, a)
        assert run_length(a, b) == run_length(b, a)


class TestPolygon:
    def test_area_disjoint(self):
        assert rectilinear_area([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)]) == 8

    def test_area_overlap_counted_once(self):
        assert rectilinear_area([Rect(0, 0, 4, 4), Rect(2, 0, 6, 4)]) == 24

    def test_area_empty(self):
        assert rectilinear_area([]) == 0
        assert rectilinear_area([Rect(0, 0, 0, 5)]) == 0

    def test_merge_rects_l_shape(self):
        pieces = merge_rects([Rect(0, 0, 10, 2), Rect(0, 0, 2, 10)])
        assert sum(p.area for p in pieces) == 20 + 20 - 4
        for i, a in enumerate(pieces):
            for b in pieces[i + 1:]:
                assert not a.intersects_open(b)

    def test_boundary_edges_square(self):
        edges = boundary_edges([Rect(0, 0, 10, 10)])
        assert len(edges) == 4
        lengths = sorted(abs(x1 - x0) + abs(y1 - y0) for x0, y0, x1, y1 in edges)
        assert lengths == [10, 10, 10, 10]

    def test_boundary_edges_l_shape(self):
        edges = boundary_edges([Rect(0, 0, 10, 4), Rect(0, 0, 4, 10)])
        # An L has 6 boundary edges.
        assert len(edges) == 6
        perimeter = sum(abs(x1 - x0) + abs(y1 - y0) for x0, y0, x1, y1 in edges)
        assert perimeter == 40

    def test_polygon_width_at(self):
        rects = [Rect(0, 0, 100, 20)]
        assert polygon_width_at(rects, 50, 10) == 20
        assert polygon_width_at(rects, 500, 10) == 0

    def test_min_polygon_width(self):
        assert min_polygon_width([Rect(0, 0, 100, 20), Rect(0, 0, 10, 100)]) == 10

    @settings(max_examples=40, deadline=None)
    @given(st.lists(rect_strategy, max_size=5))
    def test_merge_rects_preserves_area(self, rects):
        assert sum(p.area for p in merge_rects(rects)) == rectilinear_area(rects)


class TestHanan:
    def test_coordinates_from_points_and_rects(self):
        xs, ys = hanan_coordinates([(1, 2), (5, 9)], [Rect(3, 3, 4, 4)])
        assert xs == [1, 3, 4, 5]
        assert ys == [2, 3, 4, 9]

    def test_refine_with_pitch_adds_tau_offsets(self):
        coords = refine_with_pitch([0, 10], tau=4)
        assert 0 in coords and 10 in coords
        # Offsets at multiples of 4 around the close pair.
        assert 4 in coords and 8 in coords
        assert coords == sorted(set(coords))

    def test_refine_far_apart_unchanged_between(self):
        coords = refine_with_pitch([0, 1000], tau=4)
        # The two coordinates are far apart: only local +-2*tau fill-in.
        middle = [c for c in coords if 20 < c < 980]
        assert middle == []

    def test_refine_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            refine_with_pitch([0, 1], tau=0)
