"""Tests for the AVL tree underlying the shape grid's interval rows."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.avl import AVLTree


def test_insert_and_lookup():
    tree = AVLTree()
    tree.insert(5, "a")
    tree.insert(3, "b")
    tree.insert(8, "c")
    assert tree[5] == "a"
    assert tree[3] == "b"
    assert tree[8] == "c"
    assert len(tree) == 3


def test_insert_replaces_value():
    tree = AVLTree()
    tree.insert(1, "old")
    tree.insert(1, "new")
    assert tree[1] == "new"
    assert len(tree) == 1


def test_missing_key_raises():
    tree = AVLTree()
    with pytest.raises(KeyError):
        tree[42]


def test_get_default():
    tree = AVLTree()
    assert tree.get(7, "fallback") == "fallback"


def test_delete():
    tree = AVLTree()
    for key in [5, 3, 8, 1, 4, 7, 9]:
        tree.insert(key, key * 10)
    tree.delete(5)
    assert 5 not in tree
    assert len(tree) == 6
    tree.check_invariants()


def test_delete_missing_raises():
    tree = AVLTree()
    tree.insert(1, None)
    with pytest.raises(KeyError):
        tree.delete(2)


def test_pop():
    tree = AVLTree()
    tree.insert(1, "x")
    assert tree.pop(1) == "x"
    assert tree.pop(1, "gone") == "gone"
    with pytest.raises(KeyError):
        tree.pop(1)


def test_min_max():
    tree = AVLTree()
    for key in [5, 2, 9]:
        tree.insert(key, str(key))
    assert tree.min_item() == (2, "2")
    assert tree.max_item() == (9, "9")


def test_min_on_empty_raises():
    with pytest.raises(KeyError):
        AVLTree().min_item()


def test_neighbour_queries():
    tree = AVLTree()
    for key in [10, 20, 30]:
        tree.insert(key, None)
    assert tree.floor_item(25)[0] == 20
    assert tree.floor_item(20)[0] == 20
    assert tree.floor_item(5) is None
    assert tree.ceiling_item(25)[0] == 30
    assert tree.ceiling_item(30)[0] == 30
    assert tree.ceiling_item(35) is None
    assert tree.lower_item(20)[0] == 10
    assert tree.higher_item(20)[0] == 30


def test_range_iteration():
    tree = AVLTree()
    for key in range(0, 100, 10):
        tree.insert(key, key)
    keys = [k for k, _ in tree.items(lo=25, hi=65)]
    assert keys == [30, 40, 50, 60]


def test_full_iteration_sorted():
    tree = AVLTree()
    data = [5, 1, 9, 3, 7]
    for key in data:
        tree.insert(key, None)
    assert [k for k, _ in tree] == sorted(data)


def test_balance_under_sequential_insert():
    tree = AVLTree()
    for key in range(1000):
        tree.insert(key, key)
    tree.check_invariants()
    # A balanced tree over 1000 keys has height <= 1.44 log2(1001) ~ 15.
    assert tree._root.height <= 15


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-1000, 1000)))
def test_matches_dict_reference(keys):
    tree = AVLTree()
    reference = {}
    for key in keys:
        tree.insert(key, key * 2)
        reference[key] = key * 2
    assert sorted(reference.items()) == list(tree.items())
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=200))
def test_random_insert_delete(ops):
    tree = AVLTree()
    reference = {}
    for is_insert, key in ops:
        if is_insert:
            tree.insert(key, key)
            reference[key] = key
        elif key in reference:
            tree.delete(key)
            del reference[key]
    assert sorted(reference.items()) == list(tree.items())
    tree.check_invariants()


def test_large_random_workload_stays_balanced():
    rng = random.Random(7)
    tree = AVLTree()
    reference = {}
    for _ in range(3000):
        key = rng.randrange(500)
        if rng.random() < 0.6:
            tree.insert(key, key)
            reference[key] = key
        elif key in reference:
            tree.delete(key)
            del reference[key]
    tree.check_invariants()
    assert sorted(reference) == list(tree.keys())
