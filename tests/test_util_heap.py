"""Tests for the addressable heap used by all Dijkstra variants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.heap import AddressableHeap


def test_push_pop_order():
    heap = AddressableHeap()
    heap.push("a", 3)
    heap.push("b", 1)
    heap.push("c", 2)
    assert heap.pop() == ("b", 1)
    assert heap.pop() == ("c", 2)
    assert heap.pop() == ("a", 3)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        AddressableHeap().pop()


def test_peek_does_not_remove():
    heap = AddressableHeap()
    heap.push("x", 5)
    assert heap.peek() == ("x", 5)
    assert len(heap) == 1


def test_decrease_key():
    heap = AddressableHeap()
    heap.push("a", 10)
    heap.push("b", 5)
    assert heap.decrease_key("a", 1)
    assert heap.pop() == ("a", 1)


def test_decrease_key_noop_when_higher():
    heap = AddressableHeap()
    heap.push("a", 3)
    assert not heap.decrease_key("a", 7)
    assert heap.priority("a") == 3


def test_push_existing_updates():
    heap = AddressableHeap()
    heap.push("a", 3)
    heap.push("a", 1)
    assert heap.pop() == ("a", 1)
    assert not heap


def test_membership_and_priority():
    heap = AddressableHeap()
    heap.push(("v", 1), 9)
    assert ("v", 1) in heap
    assert heap.priority(("v", 1)) == 9
    assert ("v", 2) not in heap


def test_remove():
    heap = AddressableHeap()
    for item, priority in [("a", 1), ("b", 2), ("c", 3)]:
        heap.push(item, priority)
    assert heap.remove("b") == 2
    assert heap.remove("b") is None
    assert [heap.pop()[0] for _ in range(2)] == ["a", "c"]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
def test_heapsort_matches_sorted(values):
    heap = AddressableHeap()
    for index, value in enumerate(values):
        heap.push(index, value)
    out = []
    while heap:
        out.append(heap.pop()[1])
    assert out == sorted(values)


def test_random_workload_matches_reference():
    rng = random.Random(11)
    heap = AddressableHeap()
    alive = {}
    next_id = 0
    for _ in range(2000):
        op = rng.random()
        if op < 0.5 or not alive:
            priority = rng.randrange(10000)
            heap.push(next_id, priority)
            alive[next_id] = priority
            next_id += 1
        elif op < 0.8:
            item = rng.choice(list(alive))
            new_priority = rng.randrange(alive[item]) if alive[item] else 0
            if heap.decrease_key(item, new_priority):
                alive[item] = new_priority
        else:
            item, priority = heap.pop()
            assert priority == min(alive.values())
            assert alive.pop(item) == priority
    while heap:
        item, priority = heap.pop()
        assert priority == min(alive.values())
        assert alive.pop(item) == priority
    assert not alive
