"""Integration tests: net connection (Sec. 4.4) and the detailed router."""

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.drc.checker import DrcChecker
from repro.droute.area import RoutingArea
from repro.droute.connect import NetConnector
from repro.droute.partition import (
    assign_nets_to_rounds,
    balance_report,
    partition_sequence,
)
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace


@pytest.fixture(scope="module")
def routed():
    spec = ChipSpec("crtest", rows=3, row_width_cells=6, net_count=10, seed=7)
    chip = generate_chip(spec)
    space = RoutingSpace(chip)
    router = DetailedRouter(space)
    result = router.run()
    return chip, space, router, result


class TestConnector:
    def test_single_net_connects(self):
        spec = ChipSpec("conn1", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        space = RoutingSpace(chip)
        planner = PinAccessPlanner(space)
        connector = NetConnector(space, planner=planner)
        net = chip.nets[0]
        result = connector.connect_net(net, RoutingArea.everywhere())
        assert result.success
        route = space.routes[net.name]
        assert route.wire_length > 0

    def test_route_electrically_connected(self):
        spec = ChipSpec("conn2", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        space = RoutingSpace(chip)
        connector = NetConnector(space, planner=PinAccessPlanner(space))
        net = chip.nets[0]
        assert connector.connect_net(net, RoutingArea.everywhere()).success
        report = DrcChecker(space).run(spacing=False, same_net=False)
        assert report.opens <= len(chip.nets) - 1  # other nets unrouted

    def test_suspension_restores_pins(self):
        spec = ChipSpec("conn3", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        space = RoutingSpace(chip)
        net = chip.nets[0]
        layer, rect = net.pins[0].shapes[0]
        before = len(space.shape_grid.query("wiring", layer, rect))
        token = space.suspend_net(net.name)
        during = len(space.shape_grid.query("wiring", layer, rect))
        space.restore_net(token)
        after = len(space.shape_grid.query("wiring", layer, rect))
        assert during < before
        assert after == before


class TestDetailedRouter:
    def test_all_nets_routed(self, routed):
        chip, space, router, result = routed
        assert result.failed == set()
        assert len(result.routed) == len(chip.nets)

    def test_no_opens(self, routed):
        chip, space, router, result = routed
        report = DrcChecker(space).run(spacing=False, same_net=False)
        assert report.opens == 0

    def test_wire_length_positive(self, routed):
        _chip, _space, _router, result = routed
        assert result.wire_length > 0
        assert result.via_count > 0

    def test_critical_nets_first(self, routed):
        chip, _space, router, _result = routed
        order = router._order_nets(chip.nets)
        weights = [n.weight for n in order]
        first_normal = next(
            (i for i, w in enumerate(weights) if w <= 1.0), len(weights)
        )
        assert all(w > 1.0 for w in weights[:first_normal])

    def test_summary_fields(self, routed):
        *_, result = routed
        summary = result.summary()
        for key in ("nets", "routed", "failed", "opens", "wire_length", "vias"):
            assert key in summary

    def test_fast_grid_hit_rate_high(self, routed):
        _chip, space, *_ = routed
        assert space.fast_grid.hit_rate > 0.7

    def test_corridor_restriction_respected(self):
        spec = ChipSpec("corr", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        space = RoutingSpace(chip)
        net = chip.nets[0]
        box = net.bounding_box().expanded(10 * 80)
        clipped = box.intersection(chip.die) or chip.die
        corridors = {
            net.name: RoutingArea.from_boxes(
                [(z, clipped) for z in chip.stack.indices]
            )
        }
        router = DetailedRouter(space, corridors=corridors)
        result = router.run([net])
        assert net.name in result.routed
        route = space.routes[net.name]
        margin = 8 * 80 * (router.max_retry_rounds + 1)
        for stick in route.wires:
            assert clipped.expanded(margin).contains_rect(stick.as_rect())


class TestPartition:
    def test_sequence_shrinks_to_one_region(self):
        spec = ChipSpec("part", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        sequence = partition_sequence(chip, threads=4)
        assert len(sequence[-1].regions) == 1
        counts = [len(r.regions) for r in sequence]
        assert counts == sorted(counts, reverse=True)

    def test_regions_cover_die(self):
        spec = ChipSpec("part2", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        for part in partition_sequence(chip, threads=4):
            total = sum(r.area for r in part.regions)
            assert total == chip.die.area

    def test_every_net_assigned(self):
        spec = ChipSpec("part3", rows=3, row_width_cells=6, net_count=10, seed=7)
        chip = generate_chip(spec)
        sequence = partition_sequence(chip, threads=4)
        rounds = assign_nets_to_rounds(chip, sequence)
        assigned = [net.name for round_nets in rounds for _r, net in round_nets]
        assert sorted(assigned) == sorted(n.name for n in chip.nets)

    def test_balance_report_structure(self):
        spec = ChipSpec("part4", rows=3, row_width_cells=6, net_count=10, seed=7)
        chip = generate_chip(spec)
        sequence = partition_sequence(chip, threads=4)
        rounds = assign_nets_to_rounds(chip, sequence)
        report = balance_report(rounds)
        assert len(report) == len(sequence)
        for row in report:
            assert row["max_share"] >= 0.0

    def test_bad_thread_count_rejected(self):
        spec = ChipSpec("part5", rows=2, row_width_cells=4, net_count=4, seed=2)
        chip = generate_chip(spec)
        with pytest.raises(ValueError):
            partition_sequence(chip, threads=0)
