"""Focused tests for the ISR baseline internals and flow metrics."""

import pytest

from repro.baseline.isr_detailed import IsrDetailedRouter
from repro.baseline.isr_global import IsrGlobalRouter, _Grid2D, _edge2d
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.space import RoutingSpace
from repro.flow.stats import SCENIC_LENGTH_THRESHOLD, peak_memory_mb, scenic_nets
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.tech.layers import Direction
from repro.tech.wiring import StickFigure


@pytest.fixture(scope="module")
def chip():
    return generate_chip(
        ChipSpec("bltest", rows=3, row_width_cells=6, net_count=10, seed=7)
    )


@pytest.fixture(scope="module")
def graph(chip):
    g = GlobalRoutingGraph(chip)
    estimate_capacities(g, build_track_plan(chip))
    return g


class TestGrid2D:
    def test_capacities_sum_layers(self, chip, graph):
        grid = _Grid2D(graph)
        # A 2D edge's capacity is the sum over matching-direction layers.
        edge2d = next(iter(grid.capacity))
        (ax, ay), (bx, by) = edge2d
        expected = 0.0
        for z in chip.stack.indices:
            horizontal = chip.stack.direction(z) is Direction.HORIZONTAL
            if horizontal != (ay == by):
                continue
            from repro.groute.graph import canonical_edge

            edge3d = canonical_edge((ax, ay, z), (bx, by, z))
            expected += graph.capacity(edge3d)
        assert grid.capacity[edge2d] == pytest.approx(expected)

    def test_neighbors_skip_zero_capacity(self, chip, graph):
        grid = _Grid2D(graph)
        for node in [(0, 0), (1, 1)]:
            for _other, edge in grid.neighbors(node):
                assert grid.capacity.get(edge, 0.0) > 0


class TestLayerAssignment:
    def test_edges_on_matching_direction_layers(self, chip, graph):
        router = IsrGlobalRouter(chip, graph=graph)
        result = router.run()
        for route in result.routes.values():
            for edge in route.edges:
                (ax, ay, z1), (bx, by, z2) = edge
                if z1 != z2:
                    continue  # via
                horizontal_move = ay == by
                assert (
                    chip.stack.direction(z1) is Direction.HORIZONTAL
                ) == horizontal_move, f"edge {edge} on wrong-direction layer"

    def test_vias_form_contiguous_stacks(self, chip, graph):
        router = IsrGlobalRouter(chip, graph=graph)
        result = router.run()
        for route in result.routes.values():
            per_tile = {}
            for edge in route.edges:
                if edge[0][2] != edge[1][2]:
                    tile = (edge[0][0], edge[0][1])
                    per_tile.setdefault(tile, []).append(
                        (min(edge[0][2], edge[1][2]))
                    )
            for tile, levels in per_tile.items():
                levels.sort()
                for a, b in zip(levels, levels[1:]):
                    assert b == a + 1, f"gap in via stack at {tile}: {levels}"


class TestTrackAssignment:
    def test_assigned_segment_on_track(self, chip):
        space = RoutingSpace(chip)
        router = IsrDetailedRouter(space, track_assignment=True)
        long_net = max(chip.nets, key=lambda n: n.half_perimeter())
        assigned = router._assign_track_segment(long_net)
        if not assigned:
            pytest.skip("no legal track segment on this instance")
        route = space.routes[long_net.name]
        assert route.wires, "track assignment must add a stick"
        stick = route.wires[0]
        graph = space.graph
        coord = stick.y0 if stick.y0 == stick.y1 else stick.x0
        assert coord in graph._track_index[stick.layer], "segment off track"

    def test_short_nets_skipped(self, chip):
        space = RoutingSpace(chip)
        router = IsrDetailedRouter(space, track_assignment=True)
        short_net = min(chip.nets, key=lambda n: n.half_perimeter())
        if short_net.half_perimeter() >= 4 * 80:
            pytest.skip("no short-enough net in this instance")
        assert not router._assign_track_segment(short_net)


class TestStats:
    def test_scenic_requires_min_length(self, chip):
        space = RoutingSpace(chip)
        # A short route with a massive detour is still not scenic.
        net = chip.nets[0]
        z = 3
        y = space.graph.tracks[z][1]
        for offset in range(0, SCENIC_LENGTH_THRESHOLD // 200):
            space.add_wire(
                net.name, "default",
                StickFigure(z, 400, y, 500, y),
            )
            break
        assert net.name not in scenic_nets(space, 0.25)

    def test_peak_memory_positive(self):
        assert peak_memory_mb() > 1.0
