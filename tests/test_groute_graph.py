"""Tests for the global routing graph, capacities and stacked vias."""

import pytest

from repro.chip.generator import ChipSpec, TABLE_CHIP_SPECS, generate_chip
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import (
    apply_intra_tile_reduction,
    apply_stacked_via_reduction,
    estimate_capacities,
)
from repro.groute.graph import GlobalRoutingGraph, canonical_edge
from repro.groute.stackedvias import (
    capacity_reduction,
    enumerate_column_loads,
    expected_max_column_load,
)
from repro.steiner.rsmt import steiner_length
from repro.tech.layers import Direction


@pytest.fixture(scope="module")
def setup():
    chip = generate_chip(ChipSpec("grtest", rows=3, row_width_cells=6, net_count=10, seed=7))
    plan = build_track_plan(chip)
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, plan)
    return chip, plan, graph


class TestGraph:
    def test_tiles_cover_die(self, setup):
        chip, _plan, graph = setup
        assert graph.tiles_x[0] == chip.die.x_lo
        assert graph.tiles_x[-1] == chip.die.x_hi
        assert graph.tiles_y[-1] == chip.die.y_hi

    def test_edges_follow_preferred_direction(self, setup):
        chip, _plan, graph = setup
        for node in graph.nodes():
            tx, ty, z = node
            for other, _edge in graph.neighbors(node):
                ox, oy, oz = other
                if oz != z:
                    assert (ox, oy) == (tx, ty)
                elif chip.stack.direction(z) is Direction.HORIZONTAL:
                    assert oy == ty and abs(ox - tx) == 1
                else:
                    assert ox == tx and abs(oy - ty) == 1

    def test_edge_length_zero_for_vias(self, setup):
        _chip, _plan, graph = setup
        via = canonical_edge((0, 0, 1), (0, 0, 2))
        assert graph.is_via_edge(via)
        assert graph.edge_length(via) == 0

    def test_tile_of_point_roundtrip(self, setup):
        _chip, _plan, graph = setup
        for tx in range(graph.nx):
            for ty in range(graph.ny):
                cx, cy = graph.tile_center(tx, ty)
                assert graph.tile_of_point(cx, cy) == (tx, ty)

    def test_pin_nodes_nonempty(self, setup):
        chip, _plan, graph = setup
        for net in chip.nets:
            for pin in net.pins:
                assert graph.pin_nodes(pin)

    def test_local_net_detection(self, setup):
        chip, _plan, graph = setup
        for net in chip.nets:
            tiles = {
                (n[0], n[1])
                for term in graph.net_terminals(net)
                for n in term
            }
            assert graph.is_local_net(net) == (len(tiles) <= 1)


class TestCapacities:
    def test_all_edges_have_capacity_entries(self, setup):
        _chip, _plan, graph = setup
        for edge in graph.edges():
            assert edge in graph.capacities

    def test_wire_capacities_bounded_by_track_count(self, setup):
        chip, plan, graph = setup
        for edge in graph.edges():
            if graph.is_via_edge(edge):
                continue
            z = edge[0][2]
            assert 0.0 <= graph.capacity(edge) <= len(plan.layer_tracks(z))

    def test_rail_heavy_layer1_has_less_capacity(self, setup):
        chip, _plan, graph = setup
        def avg(z):
            caps = [
                graph.capacity(e) for e in graph.edges()
                if not graph.is_via_edge(e) and e[0][2] == z
            ]
            return sum(caps) / max(len(caps), 1)
        # M1 carries power rails and cell obstructions; M5 is clean.
        assert avg(1) < avg(5)

    def test_intra_tile_reduction_decreases(self, setup):
        chip, plan, _old = setup
        graph = GlobalRoutingGraph(chip)
        estimate_capacities(graph, plan)
        before = dict(graph.capacities)
        apply_intra_tile_reduction(graph, chip.nets, steiner_length)
        assert all(
            graph.capacities[e] <= before[e] + 1e-9 for e in before
        )
        assert any(graph.capacities[e] < before[e] for e in before)

    def test_stacked_via_reduction_decreases(self, setup):
        chip, plan, _old = setup
        graph = GlobalRoutingGraph(chip)
        estimate_capacities(graph, plan)
        before = dict(graph.capacities)
        apply_stacked_via_reduction(graph)
        assert all(graph.capacities[e] <= before[e] + 1e-9 for e in before)


class TestStackedVias:
    def test_zero_vias_zero_reduction(self):
        assert capacity_reduction(0) == 0.0

    def test_single_via_blocks_one_track(self):
        assert capacity_reduction(1) == 1.0

    def test_sublinear(self):
        values = [capacity_reduction(k) for k in range(1, 6)]
        diffs = [b - a for a, b in zip(values, values[1:])]
        assert all(d < 1.0 for d in diffs), "marginal blockage must shrink"
        assert all(d >= 0 for d in diffs)

    def test_saturates(self):
        assert capacity_reduction(50) == capacity_reduction(6)

    def test_enumeration_counts(self):
        # 1 run of length 1 in a 2x2 lattice: 4 placements.
        loads = enumerate_column_loads(2, 2, 1, 1, max_per_column=2)
        assert sum(loads.values()) == 4
        # Expected max column load of a single via is exactly 1.
        assert expected_max_column_load(2, 2, 1, 1, 2) == 1.0

    def test_column_limit_respected(self):
        loads = enumerate_column_loads(2, 3, 3, 1, max_per_column=1)
        for load in loads:
            assert max(load) <= 1

    def test_p_long_runs(self):
        # One run of length 2 in a 3-column row: 2 placements per row.
        loads = enumerate_column_loads(3, 1, 1, 2, max_per_column=1)
        assert sum(loads.values()) == 2
