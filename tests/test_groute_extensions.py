"""Tests for the global routing extensions: landmarks (Sec. 2.2),
the lambda scaling framework (Sec. 2.3), per-net detour bounds (Sec. 2.1)
and wire spreading (Sec. 4.2)."""

import random

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.chip.net import Net
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace
from repro.droute.spreading import WireSpreading
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.landmarks import LandmarkOracle
from repro.groute.resources import ResourceModel
from repro.groute.router import GlobalRouter
from repro.groute.sharing import ResourceSharingSolver, solve_with_scaling
from repro.groute.steiner_oracle import path_composition_steiner_tree


@pytest.fixture(scope="module")
def setup():
    chip = generate_chip(
        ChipSpec("ext", rows=3, row_width_cells=6, net_count=10, seed=7)
    )
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, build_track_plan(chip))
    return chip, graph


class TestLandmarks:
    def test_landmark_count(self, setup):
        _chip, graph = setup
        oracle = LandmarkOracle(graph, landmark_count=3)
        assert len(oracle.landmarks) == 3

    def test_potential_zero_at_targets(self, setup):
        _chip, graph = setup
        oracle = LandmarkOracle(graph, landmark_count=3)
        targets = [(1, 1, 3), (2, 2, 4)]
        pi = oracle.potential_to(targets)
        for t in targets:
            assert pi(t) <= 1e-9

    def test_lower_bound_admissible(self, setup):
        """pi(v) must never exceed the true lower-bound-metric distance."""
        _chip, graph = setup
        oracle = LandmarkOracle(graph, landmark_count=4)
        rng = random.Random(9)

        def true_distance(source, target):
            # Dijkstra under the same lower-bound metric.
            import heapq

            dist = {source: 0.0}
            heap = [(0.0, source)]
            while heap:
                d, node = heapq.heappop(heap)
                if node == target:
                    return d
                if d > dist.get(node, float("inf")):
                    continue
                for neighbour, edge in graph.neighbors(node):
                    if graph.capacity(edge) <= 0:
                        continue
                    nd = d + graph.edge_length(edge)
                    if nd < dist.get(neighbour, float("inf")):
                        dist[neighbour] = nd
                        heapq.heappush(heap, (nd, neighbour))
            return None

        nodes = [
            (rng.randrange(graph.nx), rng.randrange(graph.ny),
             rng.choice(graph.chip.stack.indices))
            for _ in range(6)
        ]
        for source in nodes[:3]:
            for target in nodes[3:]:
                true = true_distance(source, target)
                if true is None:
                    continue
                assert oracle.lower_bound(source, target) <= true + 1e-6

    def test_solver_with_landmarks_same_quality(self, setup):
        chip, graph = setup
        model = ResourceModel(graph, chip.nets)
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        plain = ResourceSharingSolver(graph, model, phases=8).solve(routable)
        with_alt = ResourceSharingSolver(
            graph, model, phases=8, use_landmarks=True, landmark_count=3
        ).solve(routable)
        assert with_alt.max_congestion <= plain.max_congestion * 1.1


class TestScalingFramework:
    def test_tight_bounds_get_scaled(self, setup):
        chip, graph = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        model = ResourceModel(graph, chip.nets)
        # Sabotage the objective guess: 10x too tight.
        model.bounds["wirelength"] /= 10.0
        solution, history = solve_with_scaling(
            graph, model, routable, phases=8, probe_phases=4
        )
        assert history[0] > 1.05, "the probe must see the bad guess"
        assert solution.max_congestion <= 1.3, (
            f"scaling should normalize lambda, got {solution.max_congestion}"
        )

    def test_good_bounds_skip_scaling(self, setup):
        chip, graph = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        model = ResourceModel(graph, chip.nets)
        _solution, history = solve_with_scaling(
            graph, model, routable, phases=8, probe_phases=4
        )
        assert len(history) == 1


class TestDetourBounds:
    def test_detour_resource_created(self, setup):
        chip, graph = setup
        net = chip.nets[0]
        net.detour_bound = 2 * net.half_perimeter()
        try:
            model = ResourceModel(graph, chip.nets)
            assert f"detour:{net.name}" in model.bounds
            edge = next(
                e for e in graph.edges() if not graph.is_via_edge(e)
            )
            usage = model.edge_usage(net.name, edge, 0.0)
            assert f"detour:{net.name}" in usage
            other = chip.nets[1]
            usage_other = model.edge_usage(other.name, edge, 0.0)
            assert f"detour:{net.name}" not in usage_other
        finally:
            net.detour_bound = None

    def test_bounded_net_stays_within_bound(self, setup):
        chip, graph = setup
        routable = [n for n in chip.nets if not graph.is_local_net(n)]
        victim = max(routable, key=lambda n: n.half_perimeter())
        victim.detour_bound = int(1.5 * victim.half_perimeter())
        try:
            model = ResourceModel(graph, chip.nets)
            solver = ResourceSharingSolver(graph, model, phases=10)
            fractional = solver.solve(routable)
            # Fractional usage of the detour resource must be near/below 1.
            detour_usage = 0.0
            for key, weight in fractional.weights[victim.name].items():
                _eu, gu = solver._usages(victim.name, key)
                detour_usage += weight * gu.get(f"detour:{victim.name}", 0.0)
            assert detour_usage <= 1.2
        finally:
            victim.detour_bound = None


class TestWireSpreading:
    def test_low_utilization_tiles_found(self):
        chip = generate_chip(
            ChipSpec("spread", rows=2, row_width_cells=5, net_count=5, seed=5)
        )
        router = GlobalRouter(chip, phases=8, seed=1)
        result = router.run()
        space = RoutingSpace(chip)
        spreading = WireSpreading.from_global_result(space.graph, result)
        assert spreading.low_utilization_tiles, "sparse chip must have spare tiles"

    def test_penalty_only_on_odd_tracks_in_spare_tiles(self):
        chip = generate_chip(
            ChipSpec("spread2", rows=2, row_width_cells=5, net_count=5, seed=5)
        )
        router = GlobalRouter(chip, phases=8, seed=1)
        result = router.run()
        space = RoutingSpace(chip)
        spreading = WireSpreading.from_global_result(space.graph, result)

        class FakeInterval:
            def __init__(self, z, t, c_lo, c_hi):
                self.z, self.t, self.c_lo, self.c_hi = z, t, c_lo, c_hi

        even = FakeInterval(5, 2, 0, 4)
        odd = FakeInterval(5, 3, 0, 4)
        assert spreading.interval_penalty(even) == 0
        assert spreading.interval_penalty(odd) in (0, spreading.penalty)

    def test_routing_with_spreading_still_succeeds(self):
        chip = generate_chip(
            ChipSpec("spread3", rows=2, row_width_cells=5, net_count=5, seed=5)
        )
        gr = GlobalRouter(chip, phases=8, seed=1)
        gr_result = gr.run()
        space = RoutingSpace(chip)
        spreading = WireSpreading.from_global_result(space.graph, gr_result)
        router = DetailedRouter(space, spreading=spreading)
        result = router.run()
        assert len(result.failed) == 0


class TestDegenerateCorridors:
    """Pinned degenerate behaviour of corridor() / corridor_detour().

    An unrouted net and a net whose global route has no edges (all
    terminals in one graph node) must fall back to the unrestricted
    routing area and a detour factor of exactly 1.0 — the detailed
    router must never be boxed into a corridor the global stage never
    computed.
    """

    def _empty_result(self):
        from repro.groute.router import GlobalRoutingResult

        chip = generate_chip(
            ChipSpec("degen", rows=2, row_width_cells=4, net_count=4, seed=2)
        )
        graph = GlobalRoutingGraph(chip)
        return chip, GlobalRoutingResult(chip, graph)

    def test_unrouted_net_gets_unrestricted_corridor(self):
        chip, result = self._empty_result()
        name = chip.nets[0].name
        area = result.corridor(name, margin_tiles=2)
        assert area.boxes is None  # RoutingArea.everywhere()
        assert area.contains(0, 0, 1) and area.allows_layer(6)

    def test_unrouted_net_detour_is_one(self):
        chip, result = self._empty_result()
        assert result.corridor_detour(chip.nets[0].name) == 1.0

    def test_edgeless_route_gets_unrestricted_corridor(self):
        from repro.groute.graph import GlobalRoute

        chip, result = self._empty_result()
        name = chip.nets[1].name
        # All terminals in one tile: the route exists but has no edges.
        result.routes[name] = GlobalRoute(name, set())
        area = result.corridor(name)
        assert area.boxes is None
        assert result.corridor_detour(name) == 1.0

    def test_routed_net_is_actually_restricted(self):
        """Contrast case: a real route does constrain the corridor."""
        chip, result = self._empty_result()
        from repro.groute.graph import GlobalRoute

        name = chip.nets[2].name
        a, b = (0, 0, 3), (1, 0, 3)
        result.routes[name] = GlobalRoute(name, {(a, b)})
        area = result.corridor(name)
        assert area.boxes is not None
        assert set(area.boxes) == {2, 3, 4}
        assert result.corridor_detour(name) >= 1.0
