"""Scale bench: streamed 10^5-net generation and bounded-RSS routing.

The paper's instances have 120k-960k nets; the point of the sharded
generator (repro.chip.generator.stream_chip_shards) is that such
instances *stream* to disk — peak memory is one region, not the chip —
and that routing one region through :class:`repro.io.shards.ShardStore`
costs memory proportional to the shard, not the instance.

Each size is generated in a fresh **spawn** subprocess so its peak RSS
(``resource.getrusage``) measures that size alone, unpolluted by the
parent's history; the largest size must stay under
:data:`GENERATION_RSS_BOUND`, and routing one region of it under
:data:`REGION_ROUTE_RSS_BOUND`.  The summary persists nets/shards/pins
(deterministic, regression-gated) plus wall-clock and RSS telemetry
into ``BENCH_scale.json`` for ``python -m repro.obs.regress``.
"""

import multiprocessing
import time

import pytest

from benchmarks.common import (
    bench_mode,
    print_table,
    write_bench_record,
)

#: Net counts exercised per mode (>= 3 sizes in every mode).
SCALE_SIZES = {
    "quick": [2_000, 20_000, 100_000],
    "default": [2_000, 20_000, 100_000],
    "full": [2_000, 20_000, 100_000, 300_000],
}

#: Peak-RSS ceiling for streaming the largest instance to disk.  An
#: in-memory 10^5-net chip holds every pin rectangle at once; the
#: streamed path must stay in the one-region-at-a-time envelope.
GENERATION_RSS_BOUND = 512 * 1024 * 1024

#: Peak-RSS ceiling for routing one region of the largest instance.
REGION_ROUTE_RSS_BOUND = 512 * 1024 * 1024

_RESULTS = {}


def _sizes():
    return SCALE_SIZES[bench_mode()]


def _child_rss_bytes():
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _generate_worker(conn, net_count, out_dir):
    """Spawn-subprocess entry: stream one sharded instance, report RSS."""
    try:
        from repro.chip.generator import scale_spec, stream_chip_shards

        spec, plan = scale_spec(net_count)
        start = time.time()
        manifest = stream_chip_shards(spec, out_dir, plan)
        conn.send(
            {
                "ok": True,
                "manifest": manifest,
                "seconds": time.time() - start,
                "shards": plan.num_regions,
                "peak_rss_bytes": _child_rss_bytes(),
            }
        )
    except BaseException as error:  # noqa: BLE001 - report, then die
        conn.send({"ok": False, "error": f"{type(error).__name__}: {error}"})
    finally:
        conn.close()


def _route_worker(conn, manifest, region_index):
    """Spawn-subprocess entry: route one region of a sharded instance."""
    try:
        from repro.flow.bonnroute import BonnRouteFlow
        from repro.io.shards import ShardStore

        store = ShardStore(manifest)
        chip = store.chip_for_region(region_index)
        start = time.time()
        result = BonnRouteFlow(
            chip, gr_phases=8, seed=1, shard_store=store
        ).run()
        conn.send(
            {
                "ok": True,
                "seconds": time.time() - start,
                "nets": len(chip.nets),
                "netlength": result.metrics.netlength,
                "vias": result.metrics.vias,
                "failed": sorted(result.detailed_result.failed),
                "peak_rss_bytes": _child_rss_bytes(),
            }
        )
    except BaseException as error:  # noqa: BLE001 - report, then die
        conn.send({"ok": False, "error": f"{type(error).__name__}: {error}"})
    finally:
        conn.close()


def _in_subprocess(worker, *args, timeout_s=900):
    """Run ``worker`` in a fresh spawn child; returns its report dict.

    Spawn (not fork) so the child's ``ru_maxrss`` starts from a bare
    interpreter instead of inheriting the parent's peak.
    """
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(target=worker, args=(child_conn, *args))
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout_s):
            raise TimeoutError(f"{worker.__name__} exceeded {timeout_s}s")
        report = parent_conn.recv()
    finally:
        parent_conn.close()
        process.join(timeout=30)
        if process.is_alive():
            process.kill()
            process.join()
    if not report.get("ok"):
        raise AssertionError(f"{worker.__name__} failed: {report.get('error')}")
    return report


@pytest.mark.parametrize("net_count", _sizes())
def test_scale_generation(benchmark, tmp_path, net_count):
    out_dir = str(tmp_path / f"shards_{net_count}")
    report = benchmark.pedantic(
        _in_subprocess,
        args=(_generate_worker, net_count, out_dir),
        rounds=1,
        iterations=1,
    )
    report["net_count"] = net_count
    report["out_dir"] = out_dir
    benchmark.extra_info["report"] = {
        k: v for k, v in report.items() if k != "ok"
    }
    _RESULTS[net_count] = report
    assert report["shards"] >= 1
    if net_count >= 100_000:
        assert report["peak_rss_bytes"] < GENERATION_RSS_BOUND, (
            f"streamed generation of {net_count} nets peaked at "
            f"{report['peak_rss_bytes'] / 2**20:.0f} MiB"
        )


def test_scale_route_one_region(benchmark, tmp_path):
    if not _RESULTS:
        pytest.skip("generation benches did not run")
    largest = max(_RESULTS)
    manifest = _RESULTS[largest]["manifest"]
    report = benchmark.pedantic(
        _in_subprocess,
        args=(_route_worker, manifest, 0),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["report"] = {
        k: v for k, v in report.items() if k != "ok"
    }
    _RESULTS["route"] = dict(report, net_count=largest)
    assert report["failed"] == [], (
        f"region 0 of the {largest}-net instance left opens: "
        f"{report['failed']}"
    )
    assert report["peak_rss_bytes"] < REGION_ROUTE_RSS_BOUND, (
        f"routing one region of {largest} nets peaked at "
        f"{report['peak_rss_bytes'] / 2**20:.0f} MiB"
    )


def test_scale_summary(benchmark):
    if not any(isinstance(key, int) for key in _RESULTS):
        pytest.skip("generation benches did not run")

    def summarize():
        sizes = sorted(key for key in _RESULTS if isinstance(key, int))
        wall_clock = {}
        work = {}
        resources = {}
        rows = []
        for net_count in sizes:
            report = _RESULTS[net_count]
            wall_clock[f"gen_{net_count}_s"] = report["seconds"]
            work[f"gen_{net_count}_nets"] = net_count
            work[f"gen_{net_count}_shards"] = report["shards"]
            resources[f"gen_{net_count}_peak_rss_bytes"] = report[
                "peak_rss_bytes"
            ]
            rows.append(
                [
                    net_count,
                    report["shards"],
                    f"{report['seconds']:.2f}",
                    f"{report['peak_rss_bytes'] / 2**20:.0f}",
                ]
            )
        route = _RESULTS.get("route")
        if route is not None:
            wall_clock["route_region_s"] = route["seconds"]
            work["route_region_nets"] = route["nets"]
            work["route_region_netlength"] = route["netlength"]
            work["route_region_vias"] = route["vias"]
            resources["route_region_peak_rss_bytes"] = route["peak_rss_bytes"]
            rows.append(
                [
                    f"route r0 of {route['net_count']}",
                    "-",
                    f"{route['seconds']:.2f}",
                    f"{route['peak_rss_bytes'] / 2**20:.0f}",
                ]
            )
        return wall_clock, work, resources, rows

    wall_clock, work, resources, rows = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )
    print_table(
        "Scale: streamed generation and one-region routing",
        ["nets", "shards", "seconds", "peak_rss_mib"],
        rows,
    )
    path = write_bench_record("scale", wall_clock, work, resources=resources)
    if path is not None:
        print(f"bench record appended to {path}")
