"""Sec. 4.1 statistics: interval vs node labelling.

Paper: "labeling intervals instead of single nodes speeds up the path
search by at least a factor of 6" (on 22 nm chips, measured in labelling
work).

The bench runs a batch of long-distance searches with both algorithms on
the same warm routing space and compares heap pops, labels, and
wall-clock; costs must match exactly on every query.
"""

import random
import time

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.area import RoutingArea
from repro.droute.future_cost import FutureCostH, SearchCosts
from repro.droute.intervals import GraphView
from repro.droute.pathsearch import interval_path_search, node_path_search
from repro.droute.space import RoutingSpace


def _queries(space, count=14):
    """Long-distance queries: the regime the paper's statistic covers
    (interval labelling shines when node Dijkstra would label long track
    stretches)."""
    rng = random.Random(23)
    graph = space.graph
    die = space.chip.die
    min_distance = (die.width + die.height) // 3
    queries = []
    while len(queries) < count:
        z1 = rng.choice(graph.stack.indices)
        z2 = rng.choice(graph.stack.indices)
        s = (z1, rng.randrange(len(graph.tracks[z1])),
             rng.randrange(len(graph.crosses[z1])))
        t = (z2, rng.randrange(len(graph.tracks[z2])),
             rng.randrange(len(graph.crosses[z2])))
        if s == t:
            continue
        sx, sy, _ = graph.position(s)
        tx, ty, _ = graph.position(t)
        if abs(sx - tx) + abs(sy - ty) < min_distance:
            continue
        queries.append((s, t))
    return queries


def test_interval_vs_node_labelling(benchmark):
    chip = generate_chip(
        ChipSpec("statint", rows=3, row_width_cells=7, net_count=8, seed=3)
    )
    space = RoutingSpace(chip)
    queries = _queries(space)
    costs = SearchCosts()
    area = RoutingArea.everywhere()

    def run(search):
        stats = {"pops": 0, "labels": 0, "costs": [], "time": 0.0}
        for s, t in queries:
            pi = FutureCostH(space.graph, [t], costs)
            view = GraphView(space, "default", area, forced_vertices={s, t})
            start = time.time()
            result = search(view, {s: 0}, {t}, costs, pi)
            stats["time"] += time.time() - start
            stats["costs"].append(result.cost if result else None)
            if result is not None:
                stats["pops"] += result.stats.pops
                stats["labels"] += result.stats.labels_pushed
        return stats

    def run_both():
        interval = run(interval_path_search)
        node = run(node_path_search)
        return interval, node

    interval, node = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert interval["costs"] == node["costs"], "optimal costs must agree"
    pop_ratio = node["pops"] / max(interval["pops"], 1)
    label_ratio = node["labels"] / max(interval["labels"], 1)
    rows = [
        ["interval (Alg. 4)", interval["pops"], interval["labels"],
         f"{interval['time']:.2f}"],
        ["node labelling", node["pops"], node["labels"], f"{node['time']:.2f}"],
        ["ratio", f"{pop_ratio:.1f}x", f"{label_ratio:.1f}x",
         f"{node['time'] / max(interval['time'], 1e-9):.2f}x"],
    ]
    print_table(
        f"Sec. 4.1 stats: {len(queries)} long-distance searches "
        "(paper: >= 6x labelling reduction)",
        ["algorithm", "heap pops", "labels", "wall s"],
        rows,
    )
    benchmark.extra_info["pop_ratio"] = pop_ratio
    benchmark.extra_info["label_ratio"] = label_ratio
    assert pop_ratio >= 6.0, (
        "the paper's >= 6x labelling reduction should reproduce in pops"
    )
