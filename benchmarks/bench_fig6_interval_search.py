"""Fig. 6: the interval-based path search's labelling.

Paper: the completed search of the figure labels whole intervals; label
counts stay near the number of intervals touched, far below the vertex
count a node-labelling Dijkstra visits, while the found path length is
identical.

The bench recreates a comparable scenario - a source and target on
different tracks with unusable vertex runs in between - and compares
interval vs node labelling on the exact same graph view.
"""

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.area import RoutingArea
from repro.droute.future_cost import FutureCostH, SearchCosts
from repro.droute.intervals import GraphView
from repro.droute.pathsearch import interval_path_search, node_path_search
from repro.droute.space import RoutingSpace
from repro.tech.wiring import StickFigure


def _build():
    chip = generate_chip(
        ChipSpec("fig6", rows=2, row_width_cells=6, net_count=4, seed=6)
    )
    space = RoutingSpace(chip)
    graph = space.graph
    z = 5
    # Foreign wires creating the figure's broken-interval structure.
    for t_index, (c_lo, c_hi) in ((1, (3, 6)), (3, (8, 12)), (2, (14, 16))):
        if t_index >= len(graph.tracks[z]):
            continue
        y = graph.tracks[z][t_index]
        x_lo, _, _ = graph.position((z, t_index, c_lo))
        x_hi, _, _ = graph.position((z, t_index, min(c_hi, len(graph.crosses[z]) - 1)))
        space.add_wire(f"obst{t_index}", "default", StickFigure(z, x_lo, y, x_hi, y))
    s = (z, 0, 1)
    t = (z, len(graph.tracks[z]) - 1, len(graph.crosses[z]) - 2)
    return space, s, t


def test_fig6_interval_labelling(benchmark):
    space, s, t = _build()
    costs = SearchCosts()
    area = RoutingArea.everywhere()
    pi = FutureCostH(space.graph, [t], costs)

    def run_interval():
        view = GraphView(space, "default", area, forced_vertices={s, t})
        return interval_path_search(view, {s: 0}, {t}, costs, pi)

    result_i = benchmark(run_interval)
    view_n = GraphView(space, "default", area, forced_vertices={s, t})
    result_n = node_path_search(view_n, {s: 0}, {t}, costs, pi)
    assert result_i is not None and result_n is not None
    rows = [
        ["interval (Alg. 4)", result_i.cost, result_i.stats.labels_pushed,
         result_i.stats.pops, result_i.stats.vertices_processed],
        ["node labelling", result_n.cost, result_n.stats.labels_pushed,
         result_n.stats.pops, result_n.stats.vertices_processed],
    ]
    print_table(
        "Fig. 6: completed path search, interval vs node labelling",
        ["algorithm", "path cost", "labels", "heap pops", "vertices"],
        rows,
    )
    benchmark.extra_info["interval"] = result_i.stats.as_dict()
    benchmark.extra_info["node"] = result_n.stats.as_dict()
    assert result_i.cost == result_n.cost, "identical optimal costs"
    assert result_i.stats.pops < result_n.stats.pops
