"""pytest-benchmark suite reproducing the paper's tables and figures.

Run with ``PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s``;
see EXPERIMENTS.md for the mapping from bench modules to paper exhibits.
"""
