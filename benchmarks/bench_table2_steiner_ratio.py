"""Table II: global routing netlength over Steiner length by terminals.

Paper: ratio above Steiner length per terminal-count class
  2 terminals: 1.037x   3: 1.078x   4: 1.101x
  5-10: 1.145x   11-20: 1.181x   >20: 1.182x

The ratios grow with terminal count (Algorithm 1's approximation factor
is 2 - 2/|W|, but much better in practice) and stay far below 2.  The
bench reproduces the classes over the bench chips' global routes.
"""

import pytest

from benchmarks.common import (
    bench_observability,
    obs_work_counters,
    print_table,
    write_bench_record,
)
from repro.chip.generator import ChipSpec, generate_chip
from repro.groute.router import GlobalRouter
from repro.steiner.rsmt import steiner_length

#: Dedicated chips with a terminal histogram covering all six classes
#: (global routing only, so these can be larger than the flow benches).
TABLE2_SPECS = [
    ChipSpec("t2a", rows=4, row_width_cells=10, net_count=30, seed=201,
             big_fanout_nets=1, big_fanout_max=26),
    ChipSpec("t2b", rows=4, row_width_cells=11, net_count=32, seed=202,
             big_fanout_nets=2, big_fanout_max=24),
    ChipSpec("t2c", rows=5, row_width_cells=10, net_count=34, seed=203,
             big_fanout_nets=1, big_fanout_max=28),
]

CLASSES = [
    ("2", lambda k: k == 2),
    ("3", lambda k: k == 3),
    ("4", lambda k: k == 4),
    ("5-10", lambda k: 5 <= k <= 10),
    ("11-20", lambda k: 11 <= k <= 20),
    (">20", lambda k: k > 20),
]

PAPER_RATIOS = {
    "2": 1.037, "3": 1.078, "4": 1.101,
    "5-10": 1.145, "11-20": 1.181, ">20": 1.182,
}


def _collect():
    per_class = {name: [0, 0] for name, _ in CLASSES}  # [routed, steiner]
    work = {}
    for spec in TABLE2_SPECS:
        chip = generate_chip(spec)
        # capacity_scale simulates the paper's dense-chip congestion
        # regime (DESIGN.md); without it the sparse synthetic instances
        # route every class at ratio ~1.00.
        router = GlobalRouter(chip, phases=10, seed=1, capacity_scale=0.3)
        with bench_observability():
            result = router.run()
            for name, value in obs_work_counters(f"{spec.name}.").items():
                work[name] = work.get(name, 0) + value
        graph = router.graph
        for net in chip.nets:
            if net.name not in result.routes:
                continue
            routed = result.net_wire_length(net.name)
            # Steiner baseline on the same tile-center quantization the
            # global router works with, so the ratio is >= 1 by
            # construction (as in the paper, where both are measured on
            # the same routing space).
            centers = sorted({
                graph.node_center(node)
                for terminal in graph.net_terminals(net)
                for node in terminal
            })
            lower = steiner_length(centers)
            if lower <= 0 or routed <= 0:
                continue
            for name, predicate in CLASSES:
                if predicate(net.terminal_count):
                    per_class[name][0] += routed
                    per_class[name][1] += lower
                    break
    return per_class, work


def test_table2_steiner_ratios(benchmark):
    per_class, work = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    measured = {}
    for name, _pred in CLASSES:
        routed, lower = per_class[name]
        if lower == 0:
            rows.append([name, "-", "-", PAPER_RATIOS[name]])
            continue
        ratio = routed / lower
        measured[name] = ratio
        rows.append([name, routed, f"{ratio:.3f}x", f"{PAPER_RATIOS[name]}x"])
    print_table(
        "Table II (scaled): GR netlength over Steiner length",
        ["terminals", "netlength", "measured", "paper"],
        rows,
    )
    benchmark.extra_info["ratios"] = measured
    for name, _pred in CLASSES:
        routed, lower = per_class[name]
        work[f"class_{name.replace('-', '_').replace('>', 'gt')}.routed"] = routed
        work[f"class_{name.replace('-', '_').replace('>', 'gt')}.steiner"] = lower
    write_bench_record("table2", wall_clock={}, work=work)
    # Reproduction shape: every class stays far below Algorithm 1's
    # 2 - 2/|W| worst case (the paper's central claim for Table II), and
    # the quantized baseline makes every ratio >= 1.
    assert all(1.0 <= ratio < 1.8 for ratio in measured.values())
