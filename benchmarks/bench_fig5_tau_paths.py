"""Fig. 5: geometric vs tau-feasible shortest paths.

Paper: a geometric shortest path from a via pad to a pin violates
minimum-segment-length (notch / short-edge) rules; enforcing a minimum
segment length tau yields a slightly longer but rule-clean path.

The bench rebuilds the figure's situation - a target offset by less than
tau with obstacles around - and compares the unconstrained (tau=1)
shortest path against the tau-feasible one.
"""

import pytest

from benchmarks.common import print_table
from repro.geometry.rect import Rect
from repro.grid.blockgrid import BlockageGrid, min_segment_length


def _scenario():
    tau = 80
    obstacles = [
        Rect(200, 120, 560, 160),   # bar between pad and pin
    ]
    bbox = Rect(0, 0, 800, 600)
    source = (120, 80)    # via pad
    target = (520, 260)   # pin corner, offset by less than 2*tau in y
    return tau, obstacles, bbox, source, target


def test_fig5_tau_feasible_paths(benchmark):
    tau, obstacles, bbox, source, target = _scenario()

    def solve():
        geometric = BlockageGrid(obstacles, 1, bbox, [source, target])
        g_result = geometric.shortest_path([source], [target])
        feasible = BlockageGrid(obstacles, tau, bbox, [source, target])
        f_result = feasible.shortest_path([source], [target])
        return g_result, f_result

    g_result, f_result = benchmark(solve)
    assert g_result is not None and f_result is not None
    g_len, g_points = g_result
    f_len, f_points = f_result
    rows = [
        ["geometric (tau=1)", g_len, min_segment_length(g_points),
         len(g_points) - 1],
        [f"tau-feasible (tau={tau})", f_len, min_segment_length(f_points),
         len(f_points) - 1],
    ]
    print_table(
        "Fig. 5: shortest path with and without minimum segment lengths",
        ["path", "length", "min segment", "segments"],
        rows,
    )
    benchmark.extra_info["geometric"] = {"length": g_len, "points": g_points}
    benchmark.extra_info["feasible"] = {"length": f_len, "points": f_points}
    # The figure's statement: the geometric path contains a rule-breaking
    # short segment; the tau-feasible one does not and is at most
    # moderately longer.
    assert min_segment_length(g_points) < tau
    assert min_segment_length(f_points) >= tau
    assert g_len <= f_len <= 2 * g_len
    # Neither path crosses the obstacle.
    for points in (g_points, f_points):
        for a, b in zip(points, points[1:]):
            seg = Rect.from_points(a[0], a[1], b[0], b[1])
            assert not any(seg.intersects_open(o) for o in obstacles)
