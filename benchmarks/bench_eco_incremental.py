"""Incremental (ECO) rerouting vs the full flow.

Following Ahrens et al. (arXiv:2111.06169), incremental detailed
routing is the production workload: one full route, then many small
ECO passes.  This bench routes each chip once, edits ~2 % of its nets
(minimum one pin move, chosen against the routed wiring so the edit
touches a genuinely small neighbourhood), and runs
``RoutingSession.apply_changes`` + ``reroute``.  The reproduction
target is the incremental win itself: the ECO pass must route a small
fraction of the nets the full flow routed (``droute.net`` span counts)
while landing on comparable wiring quality.

The summary test persists the run into ``BENCH_eco.json``
(``benchmarks/common.write_bench_record``); the deterministic work
section (span counts, dirty/rerouted net counts, netlength, vias) is
what ``python -m repro.obs.regress`` gates in CI quick mode.
"""

import time

import pytest

from benchmarks.common import (
    bench_specs,
    bench_observability,
    print_table,
    write_bench_record,
)
from repro.chip.generator import generate_chip
from repro.engine.changes import MovePin
from repro.engine.session import RoutingSession
from repro.obs import OBS

_RESULTS = {}


def _pick_edits(chip, space, count):
    """``count`` pin moves on distinct nets, least-conflicting first."""
    dx = 240
    candidates = []
    for net in chip.nets:
        for pin in net.pins:
            box = pin.bounding_box()
            if box.x_hi + dx > chip.die.x_hi - 80:
                continue
            conflicts = set()
            for layer, rect in pin.shapes:
                conflicts |= space.conflicting_nets(
                    layer, rect.translated(dx, 0)
                )
            conflicts.discard(net.name)
            candidates.append((len(conflicts), net.name, pin.name))
    candidates.sort()
    edits, used_nets = [], set()
    for _conflicts, net_name, pin_name in candidates:
        if net_name in used_nets:
            continue
        used_nets.add(net_name)
        edits.append(MovePin(net_name, pin_name, dx, 0))
        if len(edits) == count:
            break
    assert edits, f"{chip.name}: no pin can move right by {dx} dbu"
    return edits


def _droute_spans():
    return int(OBS.span_totals.get("droute.net", [0, 0.0])[0])


def _run_chip(spec):
    chip = generate_chip(spec)
    session = RoutingSession(chip, gr_phases=10, seed=1)
    with bench_observability():
        start = time.time()
        session.route()
        full_time = time.time() - start
        full_spans = _droute_spans()
        full_netlength = session.space.total_wire_length()
        full_vias = session.space.total_via_count()

    edits = _pick_edits(
        chip, session.space, count=max(1, len(chip.nets) * 2 // 100)
    )
    with bench_observability():
        start = time.time()
        session.apply_changes(edits)
        report = session.reroute()
        eco_time = time.time() - start
        eco_spans = _droute_spans()

    return {
        "chip": spec.name,
        "nets": len(chip.nets),
        "edits": len(edits),
        "full_time_s": full_time,
        "full_spans": full_spans,
        "full_netlength": full_netlength,
        "full_vias": full_vias,
        "eco_time_s": eco_time,
        "eco_spans": eco_spans,
        "eco": report.as_dict(),
    }


@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_eco_chip(benchmark, spec):
    row = benchmark.pedantic(_run_chip, args=(spec,), rounds=1, iterations=1)
    _RESULTS[spec.name] = row
    benchmark.extra_info["eco"] = row
    # The incremental pass must never route more nets than the full flow
    # and must leave the frozen majority of the chip untouched.
    assert row["eco_spans"] <= row["full_spans"]
    assert row["eco"]["nets_rerouted"] < row["nets"]


def _persist(totals):
    work = {
        "eco.droute_net_spans": totals["eco_spans"],
        "eco.nets_dirty": totals["dirty"],
        "eco.nets_rerouted": totals["rerouted"],
        "eco.ripups_propagated": totals["ripups"],
        "eco.netlength": totals["eco_net"],
        "eco.vias": totals["eco_vias"],
        "full.droute_net_spans": totals["full_spans"],
        "full.netlength": totals["full_net"],
        "full.vias": totals["full_vias"],
    }
    wall_clock = {
        "full.time_s": totals["full_time"],
        "eco.time_s": totals["eco_time"],
    }
    columns = {name: row for name, row in sorted(_RESULTS.items())}
    path = write_bench_record("eco", wall_clock, work, columns=columns)
    if path is not None:
        print(f"bench record appended to {path}")


def test_eco_summary(benchmark):
    def summarize():
        rows = []
        totals = {"full_time": 0.0, "eco_time": 0.0, "full_spans": 0,
                  "eco_spans": 0, "dirty": 0, "rerouted": 0, "ripups": 0,
                  "eco_net": 0, "eco_vias": 0, "full_net": 0, "full_vias": 0}
        for name, row in sorted(_RESULTS.items()):
            eco = row["eco"]
            rows.append([
                name, row["nets"], row["edits"],
                f"{row['full_time_s']:.1f}", row["full_spans"],
                f"{row['eco_time_s']:.1f}", row["eco_spans"],
                eco["nets_dirty"], eco["nets_rerouted"],
                eco["ripups_propagated"], eco["nets_failed"],
            ])
            totals["full_time"] += row["full_time_s"]
            totals["eco_time"] += row["eco_time_s"]
            totals["full_spans"] += row["full_spans"]
            totals["eco_spans"] += row["eco_spans"]
            totals["dirty"] += eco["nets_dirty"]
            totals["rerouted"] += eco["nets_rerouted"]
            totals["ripups"] += eco["ripups_propagated"]
            totals["eco_net"] += eco["netlength"]
            totals["eco_vias"] += eco["vias"]
            totals["full_net"] += row["full_netlength"]
            totals["full_vias"] += row["full_vias"]
        print_table(
            "ECO incremental reroute vs full flow",
            ["chip", "nets", "edits", "full_s", "full_nets", "eco_s",
             "eco_nets", "dirty", "rerouted", "ripups", "failed"],
            rows,
        )
        return totals

    if not _RESULTS:
        pytest.skip("per-chip benches did not run")
    totals = benchmark.pedantic(summarize, rounds=1, iterations=1)
    benchmark.extra_info["sum"] = dict(totals)
    _persist(totals)
    # The headline incremental win: across the run, the ECO passes must
    # stay well under the full flows' detailed-routing volume.
    assert totals["eco_spans"] * 2 <= totals["full_spans"]
