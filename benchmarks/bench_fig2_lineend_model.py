"""Fig. 2: stick figures and the line-end extension policy.

Paper: every individual shape except jogs is extended by the line-end
spacing in preferred direction (pessimistic); jogs get no extension
(optimistic).  Where a wire continues (into a via or jog), the extension
is contained in the neighbouring shape and consumes no extra space.

The bench rebuilds the figure's wiring pattern (two preferred-direction
wires joined by a jog, plus a via) and measures exactly that: extension
area that sticks out vs extension area swallowed by adjacent shapes.
"""

import pytest

from benchmarks.common import print_table
from repro.geometry.polygon import rectilinear_area
from repro.tech.layers import Direction
from repro.tech.stacks import LINE_END_EXTRA, example_stack, example_wiretypes
from repro.tech.wiring import StickFigure


def _build():
    stack = example_stack(4)
    wire_type = example_wiretypes(stack)["default"]
    # Fig. 2 pattern on a horizontal layer: wire - jog - wire, plus a via
    # at the left end.
    sticks = [
        StickFigure(1, 0, 0, 600, 0),       # preferred-direction wire
        StickFigure(1, 600, 0, 600, 320),   # jog
        StickFigure(1, 600, 320, 1200, 320),  # preferred-direction wire
    ]
    shapes = []
    kinds = []
    for stick in sticks:
        shape, _cls, kind = wire_type.wire_shape(stick, stack)
        shapes.append(shape)
        kinds.append(kind.value)
    via_model = wire_type.via_model(1)
    via_shapes = [
        rect for kind, layer, rect, _c, _sk in via_model.shapes(0, 0, 1)
        if kind == "wiring" and layer == 1
    ]
    return stack, wire_type, sticks, shapes, kinds, via_shapes


def test_fig2_lineend_extensions(benchmark):
    stack, wire_type, sticks, shapes, kinds, via_shapes = benchmark(_build)
    rows = []
    for stick, shape, kind in zip(sticks, shapes, kinds):
        extended = (
            kind == "wire"
            and (shape.width - stick.as_rect().width) > wire_type.preferred_model(1).expansion.width
        )
        rows.append([str(stick), kind, str(shape), "yes" if extended else "no"])
    print_table(
        "Fig. 2: metal shapes from stick figures",
        ["stick figure", "kind", "metal shape", "line-end extended"],
        rows,
    )
    # Preferred-direction wires are extended by LINE_END_EXTRA per side.
    wire_shape = shapes[0]
    assert wire_shape.x_lo == -20 - LINE_END_EXTRA
    assert wire_shape.x_hi == 620 + LINE_END_EXTRA
    # Jogs are exempt: no extension in any direction.
    jog_shape = shapes[1]
    assert jog_shape.y_lo == -20 and jog_shape.y_hi == 340
    assert jog_shape.x_lo == 580 and jog_shape.x_hi == 620
    # The wire's right extension is swallowed by the jog shape (Fig. 2's
    # "extensions are contained in other shapes anyway"):
    union_area = rectilinear_area(shapes)
    area_without_extension_overlap = sum(s.area for s in shapes)
    assert union_area < area_without_extension_overlap
    # The left extension overlaps the via pad, consuming no extra space.
    via_union = rectilinear_area(via_shapes + [shapes[0]])
    assert via_union < via_shapes[0].area + shapes[0].area
    benchmark.extra_info["union_area"] = union_area
