"""Ablation: future costs pi_H vs pi_P vs none (Sec. 4.1).

Paper: goal orientation cuts labelling steps; the blockage-aware pi_P
labels fewer vertices than pi_H around large obstacles but costs more to
compute, so it is only used for connections whose global route detours.

The bench runs identical searches under all three potentials and
compares labelling work; all three must return identical optimal costs.
"""

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.area import RoutingArea
from repro.droute.future_cost import FutureCostH, FutureCostP, SearchCosts
from repro.droute.intervals import GraphView
from repro.droute.pathsearch import interval_path_search
from repro.droute.space import RoutingSpace
from repro.tech.wiring import StickFigure


def _build():
    chip = generate_chip(
        ChipSpec("ablfc", rows=3, row_width_cells=7, net_count=6, seed=31)
    )
    space = RoutingSpace(chip)
    graph = space.graph
    # A large wall on layer 5 the searches must detour around.
    z = 5
    t_mid = len(graph.tracks[z]) // 2
    for t in range(max(0, t_mid - 3), min(len(graph.tracks[z]), t_mid + 4)):
        y = graph.tracks[z][t]
        x_lo, _, _ = graph.position((z, t, len(graph.crosses[z]) // 3))
        x_hi, _, _ = graph.position((z, t, 2 * len(graph.crosses[z]) // 3))
        space.add_wire(f"wall{t}", "default", StickFigure(z, x_lo, y, x_hi, y))
    s = (z, 1, 1)
    t = (z, len(graph.tracks[z]) - 2, len(graph.crosses[z]) - 2)
    return space, s, t


def test_future_cost_ablation(benchmark):
    space, s, t = _build()
    costs = SearchCosts()
    area = RoutingArea.everywhere()
    large = [
        (layer, rect)
        for layer, rect, _own in space.chip.obstruction_shapes()
    ]

    def run_all():
        out = {}
        for name, pi in (
            ("none", lambda v: 0),
            ("pi_H", FutureCostH(space.graph, [t], costs)),
            ("pi_P", FutureCostP(space.graph, [t], costs, area, large)),
        ):
            view = GraphView(space, "default", area, forced_vertices={s, t})
            result = interval_path_search(view, {s: 0}, {t}, costs, pi)
            out[name] = result
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, r.cost, r.stats.pops, r.stats.labels_pushed,
         r.stats.vertices_processed]
        for name, r in results.items()
    ]
    print_table(
        "Ablation: future cost choice (identical costs required)",
        ["potential", "cost", "pops", "labels", "vertices"],
        rows,
    )
    costs_seen = {r.cost for r in results.values()}
    assert len(costs_seen) == 1, "potentials must not change optimality"
    assert results["pi_H"].stats.pops <= results["none"].stats.pops
    assert results["pi_P"].stats.pops <= results["pi_H"].stats.pops
    benchmark.extra_info["pops"] = {
        name: r.stats.pops for name, r in results.items()
    }
