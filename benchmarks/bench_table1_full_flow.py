"""Table I: full-flow comparison ISR vs BR+ISR.

Paper (sums over 8 chips, 2.76M nets): BR+ISR vs ISR achieved
* runtime   : 23:08 h vs 48:11 h      (~2.1x faster)
* netlength : 83.80 m vs 88.18 m      (~5 % less)
* vias      : 18.76 M vs 23.86 M      (~21 % fewer)
* scenic>=25%: 4,678 vs 35,928        (~87 % fewer)
* scenic>=50%: 2,005 vs 22,366        (~91 % fewer)
* errors    : 1,117 vs 945            (slightly more, "not significant")

This bench regenerates the same row structure on the scaled-down chips;
the *ratios* (who wins, roughly by how much) are the reproduction target.

Set ``REPRO_BENCH_OBS=1`` to run the BR+ISR flow with the observability
layer enabled: the internal counters (docs/OBSERVABILITY.md) are then
recorded in each benchmark's ``extra_info["br"]["obs"]`` section
alongside the paper columns.  Off by default so the timed runs measure
the disabled-mode (single boolean check) overhead only.

The summary test persists the run into ``BENCH_table1.json``
(``benchmarks/common.write_bench_record``); with ``REPRO_BENCH_OBS=1``
the record carries the summed deterministic work counters the
``python -m repro.obs.regress`` CI gate compares.
"""

import os

import pytest

from benchmarks.common import (
    bench_mode,
    bench_observability,
    bench_specs,
    print_table,
    write_bench_record,
)
from repro.chip.generator import generate_chip
from repro.flow.bonnroute import BonnRouteFlow
from repro.flow.isr_flow import IsrFlow

_RESULTS = {}

_BENCH_OBS = bool(os.environ.get("REPRO_BENCH_OBS"))


def _run_chip(spec):
    # Fresh registry per chip so counters do not bleed across rows;
    # BonnRouteFlow.run() snapshots the summary into metrics.obs.
    with bench_observability(enabled=_BENCH_OBS):
        br = BonnRouteFlow(generate_chip(spec), gr_phases=10, seed=1).run()
    isr = IsrFlow(generate_chip(spec)).run()
    return br.metrics, isr.metrics


@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_table1_chip(benchmark, spec):
    br, isr = benchmark.pedantic(_run_chip, args=(spec,), rounds=1, iterations=1)
    _RESULTS[spec.name] = (br, isr)
    benchmark.extra_info["br"] = br.as_dict()
    benchmark.extra_info["isr"] = isr.as_dict()
    # Opens broken down by structured failure reason (resilience runtime):
    # a clean run records an empty histogram, which is itself the check.
    benchmark.extra_info["br_opens_by_reason"] = dict(br.failure_reasons)
    # Per-chip sanity only (tiny instances are noisy); the headline
    # netlength / via / scenic comparisons are asserted on the sums.
    assert br.netlength <= isr.netlength * 1.30
    assert br.vias <= isr.vias * 1.30


def _persist(totals, totals_isr):
    """Append this run to BENCH_table1.json (the perf trajectory).

    Quality columns (netlength, vias, scenic, errors) are deterministic
    under fixed seeds and always gate-able; the internal work counters
    join them when ``REPRO_BENCH_OBS=1`` enabled the registry.
    """
    work = {
        "br.netlength": totals["net"],
        "br.vias": totals["vias"],
        "br.scenic_25": totals["s25"],
        "br.scenic_50": totals["s50"],
        "br.errors": totals["err"],
        "isr.netlength": totals_isr["net"],
        "isr.vias": totals_isr["vias"],
        "isr.errors": totals_isr["err"],
    }
    if _BENCH_OBS:
        for name, (br, _isr) in sorted(_RESULTS.items()):
            for counter, value in (br.obs.get("counters") or {}).items():
                key = f"br.{counter}"
                work[key] = work.get(key, 0) + (
                    int(value) if float(value).is_integer() else value
                )
    wall_clock = {
        "br.time_total_s": totals["time"],
        "br.time_bonnroute_s": totals["br_time"],
        "isr.time_total_s": totals_isr["time"],
    }
    columns = {
        name: {"br": br.as_dict(), "isr": isr.as_dict()}
        for name, (br, isr) in sorted(_RESULTS.items())
    }
    path = write_bench_record("table1", wall_clock, work, columns=columns)
    if path is not None:
        print(f"bench record appended to {path}")


def test_table1_summary(benchmark):
    def summarize():
        rows = []
        totals = {"flow": "SUM", "time": 0.0, "br_time": 0.0, "net": 0,
                  "vias": 0, "s25": 0, "s50": 0, "err": 0}
        totals_isr = dict(totals)
        opens_by_reason = {}
        for _name, (br, _isr) in sorted(_RESULTS.items()):
            for reason, count in br.failure_reasons.items():
                opens_by_reason[reason] = opens_by_reason.get(reason, 0) + count
        for name, (br, isr) in sorted(_RESULTS.items()):
            rows.append([name, "ISR", f"{isr.runtime_total:.1f}", "-",
                         isr.netlength, isr.vias, isr.scenic_25,
                         isr.scenic_50, isr.errors])
            rows.append([name, "BR+ISR", f"{br.runtime_total:.1f}",
                         f"{br.runtime_bonnroute:.1f}", br.netlength,
                         br.vias, br.scenic_25, br.scenic_50, br.errors])
            for t, m in ((totals, br), (totals_isr, isr)):
                t["time"] += m.runtime_total
                t["br_time"] += m.runtime_bonnroute
                t["net"] += m.netlength
                t["vias"] += m.vias
                t["s25"] += m.scenic_25
                t["s50"] += m.scenic_50
                t["err"] += m.errors
        rows.append(["SUM", "ISR", f"{totals_isr['time']:.1f}", "-",
                     totals_isr["net"], totals_isr["vias"],
                     totals_isr["s25"], totals_isr["s50"], totals_isr["err"]])
        rows.append(["SUM", "BR+ISR", f"{totals['time']:.1f}",
                     f"{totals['br_time']:.1f}", totals["net"],
                     totals["vias"], totals["s25"], totals["s50"],
                     totals["err"]])
        print_table(
            "Table I (scaled): ISR vs BR+ISR",
            ["chip", "flow", "time_s", "br_s", "netlength", "vias",
             "scenic25", "scenic50", "errors"],
            rows,
        )
        if opens_by_reason:
            print_table(
                "BR+ISR opens by failure reason",
                ["reason", "opens"],
                [[r, c] for r, c in sorted(opens_by_reason.items())],
            )
        else:
            print("BR+ISR opens by failure reason: none (all nets routed)")
        return totals, totals_isr, opens_by_reason

    if not _RESULTS:
        pytest.skip("per-chip benches did not run")
    totals, totals_isr, opens_by_reason = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )
    benchmark.extra_info["sum_br_opens_by_reason"] = opens_by_reason
    benchmark.extra_info["sum_br"] = {k: v for k, v in totals.items() if k != "flow"}
    benchmark.extra_info["sum_isr"] = {
        k: v for k, v in totals_isr.items() if k != "flow"
    }
    _persist(totals, totals_isr)
    if bench_mode() == "quick":
        # One tiny chip cannot carry the headline ratios (they are
        # asserted on sums precisely to smooth per-chip noise); quick
        # mode exists to feed the regression gate, so only sanity-check.
        assert totals["net"] <= totals_isr["net"] * 1.30
        return
    # Aggregate reproduction checks (Table I's headline ratios).
    assert totals["net"] < totals_isr["net"], "BR+ISR must shorten netlength"
    assert totals["vias"] < totals_isr["vias"], "BR+ISR must reduce vias"
    assert totals["s25"] <= totals_isr["s25"], "BR+ISR must cut scenic nets"
