"""Sec. 5.1: parallelization models.

* Global routing: the volatility-tolerant block solvers let threads work
  against stale prices without losing the approximation guarantee.  The
  bench compares the serial Algorithm 2 against the simulated parallel
  variant at several thread counts - lambda must stay flat.
* Detailed routing: the region partition sequence balances estimated
  workload per thread and shrinks round by round; the bench reports the
  per-round balance factors.
* Worker pool: the real multiprocessing pool routes the partition
  rounds on 2 workers and must reproduce the serial wiring exactly.
  The run persists into ``BENCH_parallel.json`` — the deterministic
  work counters are gated by ``python -m repro.obs.regress``; the
  serial vs 2-worker wall clocks ride along report-only.
"""

import time

import pytest

from benchmarks.common import (
    bench_observability,
    obs_work_counters,
    print_table,
    write_bench_record,
)
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute import pool
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace
from repro.droute.partition import (
    assign_nets_to_rounds,
    balance_report,
    partition_sequence,
)
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.resources import ResourceModel
from repro.groute.sharing import (
    ResourceSharingSolver,
    solve_parallel_simulated,
)

SPEC = ChipSpec("statpar", rows=3, row_width_cells=7, net_count=14, seed=41)


def test_parallel_sharing_quality(benchmark):
    chip = generate_chip(SPEC)
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, build_track_plan(chip))
    for edge in list(graph.capacities):
        graph.capacities[edge] *= 0.4
    routable = [n for n in chip.nets if not graph.is_local_net(n)]
    model = ResourceModel(graph, chip.nets)

    def run():
        rows = []
        lambdas = {}
        serial = ResourceSharingSolver(
            graph, model, phases=10, reuse_threshold=1.0
        ).solve(routable)
        rows.append(["serial", f"{serial.max_congestion:.3f}"])
        lambdas["serial"] = serial.max_congestion
        for threads in (2, 4, 8):
            parallel = solve_parallel_simulated(
                graph, model, routable, threads=threads, phases=10
            )
            rows.append([f"{threads} threads (simulated)",
                         f"{parallel.max_congestion:.3f}"])
            lambdas[threads] = parallel.max_congestion
        return rows, lambdas

    rows, lambdas = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Sec. 5.1: volatility-tolerant parallel resource sharing",
        ["configuration", "lambda"],
        rows,
    )
    benchmark.extra_info["lambdas"] = {str(k): v for k, v in lambdas.items()}
    for threads in (2, 4, 8):
        assert lambdas[threads] <= lambdas["serial"] * 1.15, (
            "stale-price blocks must not degrade congestion materially"
        )


def test_partition_balance(benchmark):
    chip = generate_chip(SPEC)

    def run():
        sequence = partition_sequence(chip, threads=8)
        rounds = assign_nets_to_rounds(chip, sequence)
        return sequence, rounds, balance_report(rounds)

    sequence, rounds, report = benchmark(run)
    rows = [
        [index, len(part.regions), row["nets"], f"{row['max_share']:.2f}"]
        for index, (part, row) in enumerate(zip(sequence, report))
    ]
    print_table(
        "Sec. 5.1: detailed routing partition rounds (max_share = worst "
        "thread load / ideal)",
        ["round", "regions", "nets routable", "max_share"],
        rows,
    )
    benchmark.extra_info["report"] = report
    # The region count shrinks and ends at 1; every net is assigned.
    counts = [len(part.regions) for part in sequence]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 1
    assigned = sum(row["nets"] for row in report)
    assert assigned == len(chip.nets)


def _route_with_workers(workers):
    chip = generate_chip(SPEC)
    space = RoutingSpace(chip)
    router = DetailedRouter(space, workers=workers)
    start = time.time()
    result = router.run()
    elapsed = time.time() - start
    routes = {
        name: (
            sorted(
                (t, lv, s.layer, s.x0, s.y0, s.x1, s.y1)
                for s, lv, t in route.wire_items()
            ),
            sorted(
                (t, lv, v.via_layer, v.x, v.y)
                for v, lv, t in route.via_items()
            ),
        )
        for name, route in space.routes.items()
    }
    return result, routes, elapsed


def test_pool_serial_vs_two_workers(benchmark):
    if not pool.fork_available():
        pytest.skip("fork start method unavailable")

    def run():
        with bench_observability():
            serial, serial_routes, serial_s = _route_with_workers(1)
            serial_work = obs_work_counters("serial.")
        with bench_observability():
            par, par_routes, par_s = _route_with_workers(2)
            par_work = obs_work_counters("workers2.")
        return (serial, serial_routes, serial_s, serial_work,
                par, par_routes, par_s, par_work)

    (serial, serial_routes, serial_s, serial_work,
     par, par_routes, par_s, par_work) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # The pool's whole contract: same wiring, different wall clock.
    assert par.routed == serial.routed
    assert par.failed == serial.failed
    assert par_routes == serial_routes
    assert not par.pool_degraded

    rows = [
        ["serial", f"{serial_s:.2f}", len(serial.routed),
         serial.wire_length, serial.via_count, "-", "-"],
        ["2 workers", f"{par_s:.2f}", len(par.routed),
         par.wire_length, par.via_count,
         int(par_work.get("workers2.pool.regions_dispatched", 0)),
         int(par_work.get("workers2.pool.rounds_parallel", 0))],
    ]
    print_table(
        "Sec. 5.1: crash-tolerant worker pool vs serial detailed routing",
        ["configuration", "route_s", "routed", "netlength", "vias",
         "regions", "par rounds"],
        rows,
    )
    work = {
        "serial.nets_routed": len(serial.routed),
        "serial.nets_failed": len(serial.failed),
        "workers2.nets_routed": len(par.routed),
        "workers2.nets_failed": len(par.failed),
        "workers2.identical_wiring": int(par_routes == serial_routes),
        "workers2.pool.rounds_parallel": par_work.get(
            "workers2.pool.rounds_parallel", 0
        ),
        "workers2.pool.regions_dispatched": par_work.get(
            "workers2.pool.regions_dispatched", 0
        ),
        "workers2.pool.regions_completed": par_work.get(
            "workers2.pool.regions_completed", 0
        ),
        "workers2.pool.worker_crashes": par_work.get(
            "workers2.pool.worker_crashes", 0
        ),
        "workers2.pool.region_retries": par_work.get(
            "workers2.pool.region_retries", 0
        ),
        "workers2.pool.degraded": par_work.get("workers2.pool.degraded", 0),
    }
    wall_clock = {
        "serial.route_s": serial_s,
        "workers2.route_s": par_s,
    }
    columns = {
        "chip": SPEC.name,
        "nets": len(generate_chip(SPEC).nets),
        "serial": {"netlength": serial.wire_length, "vias": serial.via_count},
        "workers2": {"netlength": par.wire_length, "vias": par.via_count},
    }
    path = write_bench_record("parallel", wall_clock, work, columns=columns)
    if path is not None:
        print(f"bench record appended to {path}")
    benchmark.extra_info["pool"] = {"work": work, "wall_clock": wall_clock}
