"""Sec. 5.1: parallelization models.

* Global routing: the volatility-tolerant block solvers let threads work
  against stale prices without losing the approximation guarantee.  The
  bench compares the serial Algorithm 2 against the simulated parallel
  variant at several thread counts - lambda must stay flat.
* Detailed routing: the region partition sequence balances estimated
  workload per thread and shrinks round by round; the bench reports the
  per-round balance factors.
"""

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.partition import (
    assign_nets_to_rounds,
    balance_report,
    partition_sequence,
)
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.resources import ResourceModel
from repro.groute.sharing import (
    ResourceSharingSolver,
    solve_parallel_simulated,
)

SPEC = ChipSpec("statpar", rows=3, row_width_cells=7, net_count=14, seed=41)


def test_parallel_sharing_quality(benchmark):
    chip = generate_chip(SPEC)
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, build_track_plan(chip))
    for edge in list(graph.capacities):
        graph.capacities[edge] *= 0.4
    routable = [n for n in chip.nets if not graph.is_local_net(n)]
    model = ResourceModel(graph, chip.nets)

    def run():
        rows = []
        lambdas = {}
        serial = ResourceSharingSolver(
            graph, model, phases=10, reuse_threshold=1.0
        ).solve(routable)
        rows.append(["serial", f"{serial.max_congestion:.3f}"])
        lambdas["serial"] = serial.max_congestion
        for threads in (2, 4, 8):
            parallel = solve_parallel_simulated(
                graph, model, routable, threads=threads, phases=10
            )
            rows.append([f"{threads} threads (simulated)",
                         f"{parallel.max_congestion:.3f}"])
            lambdas[threads] = parallel.max_congestion
        return rows, lambdas

    rows, lambdas = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Sec. 5.1: volatility-tolerant parallel resource sharing",
        ["configuration", "lambda"],
        rows,
    )
    benchmark.extra_info["lambdas"] = {str(k): v for k, v in lambdas.items()}
    for threads in (2, 4, 8):
        assert lambdas[threads] <= lambdas["serial"] * 1.15, (
            "stale-price blocks must not degrade congestion materially"
        )


def test_partition_balance(benchmark):
    chip = generate_chip(SPEC)

    def run():
        sequence = partition_sequence(chip, threads=8)
        rounds = assign_nets_to_rounds(chip, sequence)
        return sequence, rounds, balance_report(rounds)

    sequence, rounds, report = benchmark(run)
    rows = [
        [index, len(part.regions), row["nets"], f"{row['max_share']:.2f}"]
        for index, (part, row) in enumerate(zip(sequence, report))
    ]
    print_table(
        "Sec. 5.1: detailed routing partition rounds (max_share = worst "
        "thread load / ideal)",
        ["round", "regions", "nets routable", "max_share"],
        rows,
    )
    benchmark.extra_info["report"] = report
    # The region count shrinks and ends at 1; every net is assigned.
    counts = [len(part.regions) for part in sequence]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 1
    assigned = sum(row["nets"] for row in report)
    assert assigned == len(chip.nets)
