"""Fig. 1: resource consumption gamma(s) vs assigned extra space.

Paper: three curves for a net using an edge - power consumption
(dashed, decreasing convex), manufacturing yield loss (dotted,
decreasing convex), and space consumption (solid, linear increasing).
The bench regenerates the three series and verifies their shapes.
"""

import pytest

from benchmarks.common import print_table
from repro.groute.resources import power_usage, space_usage, yield_loss


def _series():
    samples = [s / 4.0 for s in range(0, 13)]  # s = 0 .. 3 tracks
    return {
        "s": samples,
        "space": [space_usage(1.0, s) for s in samples],
        "power": [power_usage(1.0, s) for s in samples],
        "yield": [yield_loss(1.0, s) for s in samples],
    }


def test_fig1_resource_curves(benchmark):
    series = benchmark(_series)
    rows = [
        [f"{s:.2f}", f"{sp:.3f}", f"{p:.3f}", f"{y:.3f}"]
        for s, sp, p, y in zip(
            series["s"], series["space"], series["power"], series["yield"]
        )
    ]
    print_table(
        "Fig. 1: gamma(s) per unit wire length",
        ["extra space s", "space (solid)", "power (dashed)", "yield (dotted)"],
        rows,
    )
    benchmark.extra_info["series"] = series
    space, power, yld = series["space"], series["power"], series["yield"]
    # Space: linear increasing with slope 1.
    deltas = [b - a for a, b in zip(space, space[1:])]
    assert all(abs(d - deltas[0]) < 1e-9 for d in deltas)
    # Power / yield: strictly decreasing ...
    assert all(b < a for a, b in zip(power, power[1:]))
    assert all(b < a for a, b in zip(yld, yld[1:]))
    # ... and convex (second differences >= 0).
    for curve in (power, yld):
        first = [b - a for a, b in zip(curve, curve[1:])]
        assert all(d2 >= d1 - 1e-9 for d1, d2 in zip(first, first[1:]))
