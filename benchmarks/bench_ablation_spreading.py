"""Ablation: wire spreading on/off (Sec. 4.2).

Paper: where space allows, spreading wires apart reduces coupling and
the critical area for extra-material defects (yield).  The bench routes
the same sparse chip with and without the spreading penalties and counts
*coupling events* - pairs of parallel same-layer wire segments on
adjacent tracks - as the yield/coupling proxy.
"""

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace
from repro.droute.spreading import WireSpreading
from repro.groute.router import GlobalRouter

SPEC = ChipSpec("ablsp", rows=3, row_width_cells=6, net_count=10, seed=7)


def _coupling_events(space) -> int:
    """Pairs of parallel diff-net segments on adjacent tracks."""
    graph = space.graph
    events = 0
    per_track = {}
    for net_name, route in space.routes.items():
        for stick, _level, _tn in route.wire_items():
            if stick.is_point:
                continue
            z = stick.layer
            tracks = graph.tracks[z]
            coord = stick.y0 if stick.y0 == stick.y1 else stick.x0
            if coord in graph._track_index[z]:
                t = graph._track_index[z][coord]
                per_track.setdefault((z, t), []).append((net_name, stick))
    for (z, t), items in per_track.items():
        neighbour = per_track.get((z, t + 1), [])
        for net_a, stick_a in items:
            for net_b, stick_b in neighbour:
                if net_a == net_b:
                    continue
                rect_a, rect_b = stick_a.as_rect(), stick_b.as_rect()
                overlap = min(rect_a.x_hi, rect_b.x_hi) - max(rect_a.x_lo, rect_b.x_lo)
                overlap_y = min(rect_a.y_hi, rect_b.y_hi) - max(rect_a.y_lo, rect_b.y_lo)
                if max(overlap, overlap_y) > 0:
                    events += 1
    return events


def _route(spreading_enabled: bool):
    chip = generate_chip(SPEC)
    gr = GlobalRouter(chip, phases=8, seed=1)
    gr_result = gr.run()
    space = RoutingSpace(chip)
    spreading = (
        WireSpreading.from_global_result(space.graph, gr_result, penalty=480)
        if spreading_enabled
        else None
    )
    router = DetailedRouter(space, spreading=spreading)
    result = router.run()
    return space, result


def test_wire_spreading_ablation(benchmark):
    def run_both():
        return _route(False), _route(True)

    (space_off, result_off), (space_on, result_on) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    events_off = _coupling_events(space_off)
    events_on = _coupling_events(space_on)
    rows = [
        ["spreading OFF", events_off, result_off.wire_length,
         len(result_off.routed)],
        ["spreading ON", events_on, result_on.wire_length,
         len(result_on.routed)],
    ]
    print_table(
        "Ablation: wire spreading (Sec. 4.2; coupling events = adjacent-"
        "track diff-net overlaps)",
        ["configuration", "coupling events", "wirelength", "nets routed"],
        rows,
    )
    benchmark.extra_info["events"] = {"off": events_off, "on": events_on}
    # Spreading must not lose nets and must not increase coupling.
    assert len(result_on.routed) == len(result_off.routed)
    assert events_on <= events_off
