"""Ablations on the resource sharing algorithm (Sec. 2.3).

1. Phase count t vs achieved congestion lambda and rounding violations
   (the paper settled on t = 125, eps = 1; our scaled instances converge
   far earlier).
2. Extra-space optimization on/off vs power and yield resource usage
   (Sec. 2.1's motivation for the convex gamma model).
"""

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.resources import ResourceModel
from repro.groute.rounding import RoundingPostprocessor
from repro.groute.sharing import ResourceSharingSolver

SPEC = ChipSpec("ablsh", rows=3, row_width_cells=7, net_count=14, seed=41)


def _setup():
    chip = generate_chip(SPEC)
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, build_track_plan(chip))
    # Emulate a dense design so congestion matters.
    for edge in list(graph.capacities):
        graph.capacities[edge] *= 0.4
    routable = [n for n in chip.nets if not graph.is_local_net(n)]
    return chip, graph, routable


def test_phase_count_ablation(benchmark):
    chip, graph, routable = _setup()
    model = ResourceModel(graph, chip.nets)

    def run():
        rows = []
        series = {}
        for phases in (1, 2, 4, 8, 16, 32):
            solver = ResourceSharingSolver(graph, model, phases=phases)
            fractional = solver.solve(routable)
            post = RoundingPostprocessor(graph, model, seed=3)
            routes = post.round(fractional)
            violations = len(post.violations(routes))
            rows.append([phases, f"{fractional.max_congestion:.3f}", violations])
            series[phases] = (fractional.max_congestion, violations)
        return rows, series

    rows, series = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: phases t vs congestion and rounding violations",
        ["t", "lambda", "violations after rounding"],
        rows,
    )
    benchmark.extra_info["series"] = {str(k): v for k, v in series.items()}
    lambdas = [series[t][0] for t in (1, 4, 32)]
    # More phases converge lambda (weakly) downward on this instance.
    assert lambdas[2] <= lambdas[0] * 1.1


def test_extra_space_ablation(benchmark):
    chip, graph, routable = _setup()

    def run():
        out = {}
        for label, optimize in (("s=0 fixed", False), ("s optimized", True)):
            model = ResourceModel(graph, chip.nets, optimize_spacing=optimize)
            solver = ResourceSharingSolver(graph, model, phases=10)
            fractional = solver.solve(routable)
            usage = {"power": 0.0, "yield": 0.0, "wirelength": 0.0}
            for net_name, weights in fractional.weights.items():
                for key, weight in weights.items():
                    _eu, gu = solver._usages(net_name, key)
                    for name in usage:
                        usage[name] += weight * gu.get(name, 0.0) * model.bounds[name]
            out[label] = usage
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, f"{u['wirelength']:.0f}", f"{u['power']:.0f}", f"{u['yield']:.0f}"]
        for label, u in results.items()
    ]
    print_table(
        "Ablation: extra-space assignment (Sec. 2.1, Fig. 1 model)",
        ["configuration", "wirelength", "power", "yield"],
        rows,
    )
    benchmark.extra_info["usage"] = {
        k: {n: round(x, 1) for n, x in v.items()} for k, v in results.items()
    }
    fixed = results["s=0 fixed"]
    optimized = results["s optimized"]
    # Extra space trades nothing in wirelength but buys power and yield.
    assert optimized["power"] <= fixed["power"] * 1.001
    assert optimized["yield"] <= fixed["yield"] * 1.001
    assert (
        optimized["power"] < fixed["power"] or optimized["yield"] < fixed["yield"]
    ), "spacing optimization should reduce power and/or yield usage"
