"""Fig. 7: conflict-free pin access vs greedy access.

Paper: for a circuit with three pins behind a blockage, connecting pins
greedily can block the last pin entirely; enumerating conflict-free
solutions always finds one when it exists, and among the conflict-free
solutions the scoring (endpoint spreading, blocked tracks, continuation
directions, length) picks the superior one.

The bench builds the figure's circuit, verifies the branch-and-bound
covers all pins, and checks the chosen solution scores at least as well
as any greedy one.
"""

import pytest

from benchmarks.common import print_table
from repro.chip.cells import CellTemplate, CircuitInstance
from repro.chip.design import Chip
from repro.chip.net import Net, Pin
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.tech.stacks import example_rules, example_stack, example_wiretypes


def _build_chip():
    stack = example_stack(4)
    pitch = 80
    template = CellTemplate(
        "FIG7", width=10 * pitch, height=960,
        pins={
            "P1": [(1, Rect(150, 430, 190, 470))],
            "P2": [(1, Rect(390, 430, 430, 470))],
            "P3": [(1, Rect(630, 430, 670, 470))],
        },
        obstructions=[(1, Rect(60, 530, 740, 570))],
    )
    inst = CircuitInstance(0, template, 1000, 1000)
    pins = {
        name: Pin(f"0/{name}", inst.pin_shapes(name), circuit_id=0)
        for name in ("P1", "P2", "P3")
    }
    nets = [
        Net("a", [pins["P1"], Pin("x", [(1, Rect(4000, 1000, 4040, 1040))])]),
        Net("b", [pins["P2"], Pin("y", [(1, Rect(4000, 2000, 4040, 2040))])]),
        Net("c", [pins["P3"], Pin("z", [(1, Rect(4000, 3000, 4040, 3040))])]),
    ]
    chip = Chip(
        "fig7", Rect(0, 0, 6000, 6000), stack, example_rules(4),
        example_wiretypes(stack), circuits=[inst], nets=nets,
    )
    return chip, inst, list(pins.values())


def _greedy(planner, catalogues):
    chosen = {}
    for name in sorted(catalogues):
        for path in catalogues[name]:
            if not any(
                planner.paths_conflict(path, other) for other in chosen.values()
            ):
                chosen[name] = path
                break
    return chosen


def test_fig7_conflict_free_access(benchmark):
    chip, inst, pins = _build_chip()
    space = RoutingSpace(chip)
    planner = PinAccessPlanner(space)

    def solve():
        catalogues = planner.circuit_catalogues(inst, pins)
        solution = planner.conflict_free_solution(catalogues)
        return catalogues, solution

    catalogues, solution = benchmark(solve)
    greedy = _greedy(planner, catalogues)
    rows = [
        ["greedy first-fit", len(greedy),
         f"{planner._score(list(greedy.values())):.0f}"],
        ["conflict-free B&B", len(solution),
         f"{planner._score(list(solution.values())):.0f}"],
    ]
    print_table(
        "Fig. 7: pin access solutions for the 3-pin circuit",
        ["method", "pins covered", "score (lower=better)"],
        rows,
    )
    benchmark.extra_info["greedy_covered"] = len(greedy)
    benchmark.extra_info["bnb_covered"] = len(solution)
    assert len(solution) == 3, "B&B must access all three pins"
    assert len(solution) >= len(greedy)
    # Among full solutions, the scored choice is at least as good.
    if len(greedy) == 3:
        assert planner._score(list(solution.values())) <= planner._score(
            list(greedy.values())
        ) + 1e-9
    # The chosen solution is pairwise DRC-clean.
    chosen = list(solution.values())
    for i, a in enumerate(chosen):
        for b in chosen[i + 1:]:
            assert not planner.paths_conflict(a, b)
