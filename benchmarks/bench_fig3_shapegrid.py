"""Fig. 3: shape-grid cell configurations and interval compression.

Paper: the Fig. 2 wiring yields 13 distinct cell configurations stored
once in the lookup table and 15 stored intervals (runs of identical
configuration numbers merged in preferred direction; empty intervals not
stored).  Our cell sizes differ, so the bench verifies the *mechanism*:
the number of stored intervals and distinct configurations stays far
below the number of covered cells, and grows only mildly when the same
pattern is stamped many times.
"""

import pytest

from benchmarks.common import print_table
from repro.geometry.rect import Rect
from repro.grid.shapegrid import ShapeGrid
from repro.tech.stacks import example_stack
from repro.tech.wiring import ShapeKind


def _stamp_pattern(grid: ShapeGrid, x0: int, y0: int, net: str) -> int:
    """The Fig. 2 wiring (wire-jog-wire + via pad), translated; returns
    the number of cells the shapes cover."""
    shapes = [
        Rect(x0 - 40, y0 - 20, x0 + 640, y0 + 20),     # wire with extensions
        Rect(x0 + 580, y0 - 20, x0 + 620, y0 + 340),   # jog
        Rect(x0 + 560, y0 + 300, x0 + 1240, y0 + 340), # second wire
        Rect(x0 - 40, y0 - 20, x0 + 40, y0 + 20),      # via pad
    ]
    cells = 0
    for rect in shapes:
        grid.add_shape("wiring", 1, rect, net, "w40", ShapeKind.WIRE, 3, 40)
        cells += ((rect.width // 80) + 1) * ((rect.height // 80) + 1)
    return cells


def test_fig3_shape_grid_compression(benchmark):
    def build():
        stack = example_stack(4)
        grid = ShapeGrid(Rect(0, 0, 40000, 40000), stack)
        covered = 0
        stamps = 20
        for i in range(stamps):
            covered += _stamp_pattern(
                grid, 400 + (i % 5) * 2000, 400 + (i // 5) * 2000, f"n{i}"
            )
        return grid, covered, stamps

    grid, covered_cells, stamps = benchmark(build)
    intervals = grid.interval_count("wiring", 1)
    configs = grid.net_agnostic_config_count("wiring", 1)
    single = ShapeGrid(Rect(0, 0, 40000, 40000), example_stack(4))
    single_cells = _stamp_pattern(single, 400, 400, "n0")
    single_configs = single.net_agnostic_config_count("wiring", 1)
    rows = [
        ["1 stamp (the Fig. 2/3 pattern)", single_cells,
         single.interval_count("wiring", 1), single_configs],
        [f"{stamps} stamps", covered_cells, intervals, configs],
    ]
    print_table(
        "Fig. 3: shape-grid compression (configs counted net-free, as in "
        "the paper's table)",
        ["wiring", "covered cells", "stored intervals", "distinct configs"],
        rows,
    )
    benchmark.extra_info["intervals"] = intervals
    benchmark.extra_info["configs"] = configs
    # Mechanism checks: interval merging and configuration interning.
    assert single.interval_count("wiring", 1) < single_cells
    assert intervals < covered_cells
    # Identical stamps (same cell phase) share configurations: the
    # net-free table barely grows with the stamp count.
    assert configs <= 2 * single_configs
