"""Shared infrastructure for the paper-reproduction benchmarks.

Each table/figure of the paper has one ``bench_*`` module that
regenerates its rows or series.  Benchmarks print their comparison rows
(run pytest with ``-s`` to see them) and attach the same data as
``benchmark.extra_info`` so the JSON export carries it.

The paper's chips have 120k-960k nets; pure Python reproduces the flows
on chips scaled down ~10^4x (DESIGN.md documents the substitution).  The
``BENCH_CHIP_SPECS`` mirror Table I's *relative* chip sizes.  By default
the expensive full-flow benches run the first ``DEFAULT_CHIP_COUNT``
chips; set ``REPRO_BENCH_FULL=1`` to run all eight, or
``REPRO_BENCH_QUICK=1`` to run only the smallest chip (the CI
regression-gate mode — minutes, not tens of minutes).

Persistence: the table benches serialize each run into a versioned
``BENCH_<bench>.json`` file at the repo root (``write_bench_record``),
so the perf trajectory accumulates across PRs and
``python -m repro.obs.regress`` can gate later runs against a committed
baseline.  Set ``REPRO_BENCH_DIR`` to redirect the files (CI writes the
current run next to, not over, the committed baseline) or
``REPRO_BENCH_PERSIST=0`` to disable persistence entirely.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional

from repro.chip.generator import ChipSpec
from repro.obs import OBS
from repro.obs.resource import peak_rss_bytes

#: Scaled-down counterparts of Table I's eight chips (chips 5 and 8 are
#: the 32 nm designs and the largest, as in the paper).
BENCH_CHIP_SPECS: List[ChipSpec] = [
    ChipSpec("chip1", rows=2, row_width_cells=5, net_count=8, seed=101),
    ChipSpec("chip2", rows=2, row_width_cells=5, net_count=9, seed=102),
    ChipSpec("chip3", rows=2, row_width_cells=6, net_count=9, seed=103),
    ChipSpec("chip4", rows=3, row_width_cells=5, net_count=10, seed=104),
    ChipSpec("chip5", rows=3, row_width_cells=7, net_count=14, seed=105, tech="32nm"),
    ChipSpec("chip6", rows=3, row_width_cells=8, net_count=16, seed=106),
    ChipSpec("chip7", rows=4, row_width_cells=7, net_count=17, seed=107),
    ChipSpec("chip8", rows=4, row_width_cells=9, net_count=24, seed=108, tech="32nm"),
]

DEFAULT_CHIP_COUNT = 4

#: Schema of the persisted ``BENCH_*.json`` files.
BENCH_SCHEMA_NAME = "repro-bench"
BENCH_SCHEMA_VERSION = 1

#: Runs kept per bench file (oldest dropped first).
BENCH_MAX_RUNS = 50

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_mode() -> str:
    """The chip-coverage mode of this run: ``quick``/``default``/``full``.

    ``quick`` wins over ``full`` when both are set: the point of quick
    mode is a bounded CI runtime.
    """
    if os.environ.get("REPRO_BENCH_QUICK"):
        return "quick"
    if os.environ.get("REPRO_BENCH_FULL"):
        return "full"
    return "default"


def bench_specs() -> List[ChipSpec]:
    mode = bench_mode()
    if mode == "quick":
        return BENCH_CHIP_SPECS[:1]
    if mode == "full":
        return BENCH_CHIP_SPECS
    return BENCH_CHIP_SPECS[:DEFAULT_CHIP_COUNT]


@contextmanager
def bench_observability(enabled: bool = True):
    """Fresh ``OBS`` registry for one bench run, disabled again after.

    Hoists the reset/configure dance the table benches need so per-chip
    counters never bleed across rows (or into later benches), and the
    persistence writer sees exactly one run's worth of data.  Yields the
    observer while enabled, ``None`` when ``enabled`` is false (so call
    sites can gate on the yielded value).
    """
    if not enabled:
        yield None
        return
    OBS.reset()
    OBS.configure(enabled=True)
    try:
        yield OBS
    finally:
        OBS.reset()
        OBS.enabled = False


def environment_fingerprint() -> Dict[str, object]:
    """Where a bench run was measured (for reading the trajectory)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "mode": bench_mode(),
    }


def git_sha() -> Optional[str]:
    """The repo HEAD commit, or None outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def bench_record_path(bench: str, directory: Optional[str] = None) -> Path:
    base = directory or os.environ.get("REPRO_BENCH_DIR") or str(REPO_ROOT)
    return Path(base) / f"BENCH_{bench}.json"


def write_bench_record(
    bench: str,
    wall_clock: Dict[str, float],
    work: Dict[str, float],
    columns: Optional[Dict[str, object]] = None,
    directory: Optional[str] = None,
    max_runs: int = BENCH_MAX_RUNS,
    resources: Optional[Dict[str, float]] = None,
) -> Optional[Path]:
    """Append one run to ``BENCH_<bench>.json``; returns the path.

    ``wall_clock`` holds noisy timings in seconds; ``work`` holds the
    deterministic quantities (labels popped, oracle calls, netlength …)
    the regression gate compares; ``columns`` carries free-form context
    rows (per-chip tables) that are recorded but never gated on;
    ``resources`` extends the machine-dependent resource telemetry
    (``peak_rss_bytes`` is always recorded — the regression gate reports
    this section but never fails on it).  Returns ``None`` when
    persistence is disabled via ``REPRO_BENCH_PERSIST=0``.
    """
    if os.environ.get("REPRO_BENCH_PERSIST", "1") == "0":
        return None
    path = bench_record_path(bench, directory)
    document: Dict[str, object] = {
        "schema": BENCH_SCHEMA_NAME,
        "version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "runs": [],
    }
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = None
        if (
            isinstance(existing, dict)
            and existing.get("schema") == BENCH_SCHEMA_NAME
            and existing.get("bench") == bench
            and isinstance(existing.get("runs"), list)
        ):
            document["runs"] = existing["runs"]
    run: Dict[str, object] = {
        "env": environment_fingerprint(),
        "git_sha": git_sha(),
        "wall_clock": {k: round(float(v), 4) for k, v in sorted(wall_clock.items())},
        "work": dict(sorted(work.items())),
    }
    run_resources: Dict[str, float] = {"peak_rss_bytes": peak_rss_bytes()}
    if resources:
        run_resources.update(resources)
    run["resources"] = dict(sorted(run_resources.items()))
    if columns:
        run["columns"] = columns
    document["runs"].append(run)
    document["runs"] = document["runs"][-max_runs:]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def obs_work_counters(prefix: str = "") -> Dict[str, float]:
    """Snapshot the deterministic OBS counters for the ``work`` section.

    Counters are integers by construction; wall-clock histograms
    (``*_s``) are excluded so the section stays machine-independent.
    """
    out: Dict[str, float] = {}
    for name, value in OBS.counters.items():
        out[f"{prefix}{name}"] = int(value) if float(value).is_integer() else value
    return out


def print_table(title: str, header: List[str], rows: List[List]) -> None:
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
