"""Shared infrastructure for the paper-reproduction benchmarks.

Each table/figure of the paper has one ``bench_*`` module that
regenerates its rows or series.  Benchmarks print their comparison rows
(run pytest with ``-s`` to see them) and attach the same data as
``benchmark.extra_info`` so the JSON export carries it.

The paper's chips have 120k-960k nets; pure Python reproduces the flows
on chips scaled down ~10^4x (DESIGN.md documents the substitution).  The
``BENCH_CHIP_SPECS`` mirror Table I's *relative* chip sizes.  By default
the expensive full-flow benches run the first ``DEFAULT_CHIP_COUNT``
chips; set ``REPRO_BENCH_FULL=1`` to run all eight.
"""

from __future__ import annotations

import os
from typing import List

from repro.chip.generator import ChipSpec

#: Scaled-down counterparts of Table I's eight chips (chips 5 and 8 are
#: the 32 nm designs and the largest, as in the paper).
BENCH_CHIP_SPECS: List[ChipSpec] = [
    ChipSpec("chip1", rows=2, row_width_cells=5, net_count=8, seed=101),
    ChipSpec("chip2", rows=2, row_width_cells=5, net_count=9, seed=102),
    ChipSpec("chip3", rows=2, row_width_cells=6, net_count=9, seed=103),
    ChipSpec("chip4", rows=3, row_width_cells=5, net_count=10, seed=104),
    ChipSpec("chip5", rows=3, row_width_cells=7, net_count=14, seed=105, tech="32nm"),
    ChipSpec("chip6", rows=3, row_width_cells=8, net_count=16, seed=106),
    ChipSpec("chip7", rows=4, row_width_cells=7, net_count=17, seed=107),
    ChipSpec("chip8", rows=4, row_width_cells=9, net_count=24, seed=108, tech="32nm"),
]

DEFAULT_CHIP_COUNT = 4


def bench_specs() -> List[ChipSpec]:
    if os.environ.get("REPRO_BENCH_FULL"):
        return BENCH_CHIP_SPECS
    return BENCH_CHIP_SPECS[:DEFAULT_CHIP_COUNT]


def print_table(title: str, header: List[str], rows: List[List]) -> None:
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
