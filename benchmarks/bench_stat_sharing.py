"""Sec. 2.3 / 2.4 statistics: oracle speed and rounding postprocessing.

Paper:
* Algorithm 1 (the Steiner oracle) averages ~0.3 ms per net;
* after randomized rounding, fewer than 10 % of the nets needed a
  postprocessing route change, almost all by *rechoosing* within the
  fractional support, and at most five genuinely new routes were
  generated on any chip;
* rip-up and reroute takes < 5 % of the global routing runtime.
"""

import pytest

from benchmarks.common import bench_specs, print_table
from repro.chip.generator import generate_chip
from repro.groute.router import GlobalRouter


def _run_all():
    rows = []
    totals = {
        "nets": 0, "oracle_calls": 0, "oracle_time": 0.0,
        "rechosen": 0, "fresh": 0, "violations": 0,
        "sharing": 0.0, "rounding": 0.0,
    }
    for spec in bench_specs():
        chip = generate_chip(spec)
        router = GlobalRouter(chip, phases=10, seed=1)
        result = router.run()
        fractional = result.fractional
        stats = result.rounding_stats
        per_call_ms = 1000.0 * fractional.oracle_time / max(
            fractional.oracle_calls, 1
        )
        rows.append([
            spec.name, len(result.routes), fractional.oracle_calls,
            f"{per_call_ms:.2f}", stats.rechosen_nets, stats.fresh_reroutes,
            stats.final_violations,
            f"{result.rounding_runtime / max(result.total_runtime, 1e-9):.1%}",
        ])
        totals["nets"] += len(result.routes)
        totals["oracle_calls"] += fractional.oracle_calls
        totals["oracle_time"] += fractional.oracle_time
        totals["rechosen"] += stats.rechosen_nets
        totals["fresh"] += stats.fresh_reroutes
        totals["violations"] += stats.final_violations
        totals["sharing"] += result.sharing_runtime
        totals["rounding"] += result.rounding_runtime
    return rows, totals


def test_sharing_and_rounding_stats(benchmark):
    rows, totals = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print_table(
        "Sec. 2.3/2.4 stats: oracle and rounding postprocessing "
        "(paper: ~0.3 ms/oracle, <10 % nets changed, <=5 fresh routes, "
        "R&R < 5 % runtime)",
        ["chip", "nets", "oracle calls", "ms/call", "rechosen",
         "fresh routes", "violations", "R&R share"],
        rows,
    )
    benchmark.extra_info["totals"] = {
        k: (round(v, 4) if isinstance(v, float) else v)
        for k, v in totals.items()
    }
    # Reproduction shape checks.
    changed = totals["rechosen"] + totals["fresh"]
    assert changed <= 0.25 * max(totals["nets"], 1), (
        "rounding should leave the vast majority of nets untouched"
    )
    assert totals["fresh"] <= 5 * len(rows), "few genuinely new routes"
    assert totals["violations"] <= 1, (
        "capacity violations after R&R must be almost zero (paper: one "
        "edge on one chip)"
    )
    rr_share = totals["rounding"] / max(
        totals["sharing"] + totals["rounding"], 1e-9
    )
    assert rr_share < 0.25, "R&R takes a small share of GR runtime"
