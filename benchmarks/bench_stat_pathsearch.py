"""Path-search kernel ablation: heap vs bucket vs bucket + pi_GR.

Three full flows over the same chip (the table-1 quick chip), one per
kernel configuration:

* ``heap`` - the reference oracle: binary heap, classic pi_H/pi_P
  future-cost policy.
* ``bucket_nofc`` - the bucketed monotone queue with the classic
  future-cost policy.  Both kernels break ties FIFO, so this run must
  reproduce the heap run *exactly* (same labels, same wiring) - the
  queue swap alone changes constants, never results.
* ``bucket`` - the default: bucket queue plus the corridor-tightened
  future cost pi_GR.  The stronger bound must cut labels pushed by at
  least 25% against the heap reference while wiring quality stays at
  parity.
* ``vec_off`` - the default kernel on the scalar (non-numpy) fast-grid
  backend (``REPRO_FASTGRID_NOVEC=1``): the legality-grid vectorization
  ablation.  The packed encoding is identical in both backends, so this
  arm must reproduce the ``bucket`` arm bit for bit - only wall clock
  may move.

The run persists into ``BENCH_pathsearch.json``; the label/pop counters
are gated by ``python -m repro.obs.regress``.
"""

import os
import time

from benchmarks.common import (
    bench_observability,
    bench_specs,
    obs_work_counters,
    print_table,
    write_bench_record,
)
from repro.chip.generator import generate_chip
from repro.droute.pathsearch import BucketKernel
from repro.flow.bonnroute import BonnRouteFlow

#: The kernel ablation runs on the table-1 quick chip in every mode:
#: three full flows per extra chip would dominate the bench suite for
#: no additional signal about the kernels.
SPEC = bench_specs()[0]

KERNELS = (
    ("heap", lambda: "heap"),
    ("bucket_nofc", lambda: BucketKernel(corridor_future_cost=False)),
    ("bucket", lambda: "bucket"),
    # vec_off: default kernel, scalar fast-grid backend (vectorization
    # ablation) - flagged via environment so every RoutingSpace the flow
    # builds picks it up.
    ("vec_off", lambda: "bucket"),
)


def _run_flow(kernel, novec=False):
    chip = generate_chip(SPEC)
    old = os.environ.pop("REPRO_FASTGRID_NOVEC", None)
    if novec:
        os.environ["REPRO_FASTGRID_NOVEC"] = "1"
    try:
        start = time.time()
        result = BonnRouteFlow(
            chip, gr_phases=10, seed=1, search_kernel=kernel
        ).run()
        elapsed = time.time() - start
    finally:
        os.environ.pop("REPRO_FASTGRID_NOVEC", None)
        if old is not None:
            os.environ["REPRO_FASTGRID_NOVEC"] = old
    metrics = result.metrics
    counters = obs_work_counters()
    return {
        "wall_s": elapsed,
        "netlength": metrics.netlength,
        "vias": metrics.vias,
        "errors": metrics.errors,
        "labels": int(counters.get("pathsearch.labels_pushed", 0)),
        "pops": int(counters.get("pathsearch.heap_pops", 0)),
        "processed": int(counters.get("pathsearch.vertices_processed", 0)),
        "searches": int(counters.get("pathsearch.searches", 0)),
        "stale_pops": int(counters.get("pathsearch.kernel.stale_pops", 0)),
        "pi_gr_searches": int(
            counters.get("pathsearch.kernel.pi_gr_searches", 0)
        ),
    }


def test_kernel_ablation(benchmark):
    def run():
        out = {}
        for name, factory in KERNELS:
            with bench_observability():
                out[name] = _run_flow(factory(), novec=(name == "vec_off"))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    heap, nofc, bucket, vec_off = (
        results["heap"], results["bucket_nofc"], results["bucket"],
        results["vec_off"],
    )

    rows = [
        [name, r["labels"], r["pops"], r["processed"], r["netlength"],
         r["vias"], r["errors"], f"{r['wall_s']:.2f}"]
        for name, r in results.items()
    ]
    print_table(
        "Path-search kernel ablation (full flow, table-1 quick chip)",
        ["kernel", "labels", "pops", "processed", "netlength", "vias",
         "errors", "wall_s"],
        rows,
    )

    # The queue swap alone is results-neutral: bit-identical searches.
    for key in ("labels", "pops", "processed", "searches",
                "netlength", "vias", "errors"):
        assert nofc[key] == heap[key], (
            f"bucket_nofc must reproduce heap exactly, {key} differs: "
            f"{nofc[key]} != {heap[key]}"
        )

    # The corridor-tightened future cost carries the acceptance bar:
    # >= 25% fewer labels pushed, wiring quality at parity.
    assert bucket["labels"] <= 0.75 * heap["labels"], (
        f"pi_GR must cut labels >= 25%: {bucket['labels']} vs "
        f"{heap['labels']}"
    )
    assert bucket["netlength"] == heap["netlength"]
    assert bucket["vias"] == heap["vias"]
    assert bucket["errors"] <= heap["errors"], (
        "the bucket kernel must not leave more DRC errors behind"
    )

    # The scalar fast-grid backend is a pure wall-clock ablation: the
    # packed words are bit-identical, so results must match exactly.
    for key in ("labels", "pops", "processed", "searches",
                "netlength", "vias", "errors"):
        assert vec_off[key] == bucket[key], (
            f"vec_off must reproduce bucket exactly, {key} differs: "
            f"{vec_off[key]} != {bucket[key]}"
        )

    work = {}
    for name, r in results.items():
        for key in ("labels", "pops", "processed", "searches",
                    "stale_pops", "pi_gr_searches", "netlength", "vias",
                    "errors"):
            work[f"{name}.{key}"] = r[key]
    # Inverted parity flags: a regression raises them above 0, which is
    # exactly what the gate flags (a decrease only ever reads improved).
    work["parity.nofc_mismatch"] = int(
        any(nofc[k] != heap[k] for k in ("labels", "netlength", "vias"))
    )
    work["parity.netlength_mismatch"] = int(
        bucket["netlength"] != heap["netlength"]
    )
    work["parity.vias_mismatch"] = int(bucket["vias"] != heap["vias"])
    work["parity.vec_off_mismatch"] = int(
        any(vec_off[k] != bucket[k] for k in ("labels", "netlength", "vias"))
    )
    wall_clock = {f"{name}.route_s": r["wall_s"] for name, r in results.items()}
    columns = {
        "chip": SPEC.name,
        "labels_reduction_pct": round(
            100.0 * (1 - bucket["labels"] / max(1, heap["labels"])), 1
        ),
    }
    path = write_bench_record("pathsearch", wall_clock, work, columns=columns)
    if path is not None:
        print(f"bench record appended to {path}")
    benchmark.extra_info["kernels"] = {
        "work": work, "wall_clock": wall_clock, "columns": columns,
    }
