"""Fig. 4: fast-grid vertex words, interval grouping, zigzag bit.

Paper: per wire type the fast grid stores legality words at track-graph
vertices (circles in the figure: jog blocked; filled circles: wire
blocked too), grouped into intervals of equal words along preferred
direction; an off-track obstacle sets a dirty bit forcing a direct
shape-grid query for the "zigzag" edge whose usability cannot be deduced
from its endpoints.  The figure's small example stores 6 intervals.

The bench reproduces all three mechanisms on one track crossing an
on-track obstacle and an off-track blob.
"""

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.tech.wiring import ShapeKind, StickFigure


def _build():
    chip = generate_chip(
        ChipSpec("fig4", rows=2, row_width_cells=5, net_count=4, seed=4)
    )
    space = RoutingSpace(chip)
    graph = space.graph
    # Top layer (vertical): its cross coordinates come from layer 5 only,
    # so consecutive track-graph vertices sit a full 160 dbu apart - the
    # geometry the zigzag construction below needs.
    z = 6
    t = len(graph.tracks[z]) // 2
    x = graph.tracks[z][t]
    # On-track foreign wire blocking a run of vertices.
    _, y_lo, _ = graph.position((z, t, 4))
    _, y_hi, _ = graph.position((z, t, 7))
    space.add_wire("obstacle", "default", StickFigure(z, x, y_lo, x, y_hi))
    # Off-track blob between vertices 12 and 13: the zigzag case.  The
    # offset is chosen so the blob violates spacing against the
    # *connecting wire segment* (cross gap 77 < 80) but not against the
    # endpoint point-shapes (l2 gap hypot(30, 77) = 82.6 >= 80).
    _, y12, _ = graph.position((z, t, 12))
    _, y13, _ = graph.position((z, t, 13))
    mid = (y12 + y13) // 2
    blob = Rect(x + 117, mid - 10, x + 137, mid + 10)
    space.shape_grid.add_shape(
        "wiring", z, blob, "offnet", "blob", ShapeKind.WIRE, 3, 20
    )
    space.fast_grid.invalidate_region(z, blob, off_track=True)
    return space, z, t


def test_fig4_fastgrid_words(benchmark):
    space, z, t = benchmark(_build)
    fast = space.fast_grid
    count = min(len(space.graph.crosses[z]), 18)
    fast.ensure_words("default", z, t, 0, count - 1)
    marks = []
    for c in range(count):
        vertex = (z, t, c)
        wire_ok = fast.vertex_usable("default", vertex, "wire")
        jog_ok = fast.vertex_usable("default", vertex, "jog")
        if wire_ok and jog_ok:
            marks.append(".")
        elif wire_ok:
            marks.append("o")  # circle: jog blocked
        else:
            marks.append("#")  # filled circle: wire blocked too
    print_table(
        "Fig. 4: vertex marks along one track ('.'=free 'o'=no-jog '#'=no-wire)",
        ["track", "marks"],
        [[f"(z={z}, t={t})", "".join(marks)]],
    )
    intervals = fast.interval_count()
    print(f"  fast-grid intervals stored: {intervals}")
    benchmark.extra_info["marks"] = "".join(marks)
    benchmark.extra_info["intervals"] = intervals
    # The blocked run shows up as non-free marks.
    assert "#" in "".join(marks)
    # Interval grouping: far fewer intervals than cached words.
    cached = fast.cached_word_count()
    assert 0 < intervals < cached
    # Zigzag bit: both endpoint words look usable, yet the edge between
    # vertices 12 and 13 fails the forced segment check.
    v, w = (z, t, 12), (z, t, 13)
    assert fast.vertex_usable("default", v, "wire")
    assert fast.vertex_usable("default", w, "wire")
    assert not fast.edge_usable("default", v, w, "wire")
