"""Sec. 3.6 statistics: fast-grid hit rate and on-track speed-up.

Paper: 97.89 % of the queries to the distance rule checking module can
be answered from the fast grid, speeding up on-track path search by
5.29x overall.

The bench routes the same chip once with the fast grid enabled and once
with it disabled (every query goes straight to the shape grid), and
reports hit rate and wall-clock ratio.
"""

import time

import pytest

from benchmarks.common import print_table
from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace

SPEC = ChipSpec("statfg", rows=3, row_width_cells=6, net_count=10, seed=7)


def _route(enabled: bool):
    chip = generate_chip(SPEC)
    space = RoutingSpace(chip, fast_grid_enabled=enabled)
    router = DetailedRouter(space)
    start = time.time()
    result = router.run()
    elapsed = time.time() - start
    return space, result, elapsed


def test_fastgrid_hit_rate_and_speedup(benchmark):
    def run_both():
        with_grid = _route(True)
        without_grid = _route(False)
        return with_grid, without_grid

    (space_on, result_on, time_on), (space_off, result_off, time_off) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    hit_rate = space_on.fast_grid.hit_rate
    speedup = time_off / max(time_on, 1e-9)
    rows = [
        ["fast grid ON", f"{time_on:.2f}", f"{hit_rate:.2%}",
         len(result_on.routed)],
        ["fast grid OFF", f"{time_off:.2f}", "-", len(result_off.routed)],
        ["paper", "-", "97.89%", "-"],
    ]
    print_table(
        f"Sec. 3.6 stats: fast grid (measured speed-up {speedup:.2f}x, "
        "paper 5.29x)",
        ["configuration", "detailed routing s", "hit rate", "nets routed"],
        rows,
    )
    benchmark.extra_info["hit_rate"] = hit_rate
    benchmark.extra_info["speedup"] = speedup
    # Reproduction shape: high hit rate, clear speed-up, same coverage.
    assert hit_rate > 0.80
    assert speedup > 1.5
    assert len(result_on.routed) == len(result_off.routed)
