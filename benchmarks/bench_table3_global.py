"""Table III: BR-global vs ISR-global routing.

Paper (sums over 8 chips): BR-global vs ISR-global
* runtime   : 26:24 min vs 48:53 min   (~1.9x faster),
  of which Algorithm 2 took 15:45 and rip-up & reroute only 0:54
  (< 5 % of the global routing runtime);
* netlength : 83.998 m vs 86.928 m over a 79.734 m Steiner bound;
* vias      : 16.53 M vs 17.96 M.

The bench regenerates these columns per chip plus the Alg. 2 / R&R
runtime split.
"""

import pytest

from benchmarks.common import (
    bench_observability,
    obs_work_counters,
    print_table,
    write_bench_record,
)
from repro.baseline.isr_global import IsrGlobalRouter
from repro.chip.generator import ChipSpec, generate_chip
from repro.groute.router import GlobalRouter
from repro.steiner.rsmt import steiner_length

#: Global routing alone is fast, so these chips are larger than the
#: full-flow bench chips; capacity_scale reproduces the dense-chip
#: congestion regime the paper's comparison lives in (DESIGN.md).
TABLE3_SPECS = [
    ChipSpec("t3a", rows=4, row_width_cells=10, net_count=28, seed=301),
    ChipSpec("t3b", rows=4, row_width_cells=11, net_count=30, seed=302),
    ChipSpec("t3c", rows=5, row_width_cells=10, net_count=32, seed=303),
    ChipSpec("t3d", rows=5, row_width_cells=12, net_count=40, seed=304),
]
CAPACITY_SCALE = 0.35


def _run_all():
    rows = []
    sums = {"br_time": 0.0, "alg2": 0.0, "rr": 0.0, "isr_time": 0.0,
            "steiner": 0, "br_net": 0, "isr_net": 0, "br_vias": 0,
            "isr_vias": 0}
    work = {}
    for spec in TABLE3_SPECS:
        chip = generate_chip(spec)
        br_router = GlobalRouter(
            chip, phases=10, seed=1, capacity_scale=CAPACITY_SCALE
        )
        with bench_observability():
            br = br_router.run()
            for name, value in obs_work_counters("br.").items():
                work[name] = work.get(name, 0) + value
        # Same chip, same (congestion-scaled) capacities for ISR.
        isr = IsrGlobalRouter(chip, graph=br_router.graph).run()
        lower = sum(
            steiner_length(net.terminal_points())
            for net in chip.nets
            if net.name in br.routes
        )
        rows.append([
            spec.name,
            f"{br.total_runtime:.2f} ({br.sharing_runtime:.2f}/{br.rounding_runtime:.2f})",
            f"{isr.total_runtime:.2f}",
            lower,
            br.wire_length(),
            isr.wire_length(),
            br.via_count(),
            isr.via_count(),
        ])
        sums["br_time"] += br.total_runtime
        sums["alg2"] += br.sharing_runtime
        sums["rr"] += br.rounding_runtime
        sums["isr_time"] += isr.total_runtime
        sums["steiner"] += lower
        sums["br_net"] += br.wire_length()
        sums["isr_net"] += isr.wire_length()
        sums["br_vias"] += br.via_count()
        sums["isr_vias"] += isr.via_count()
    return rows, sums, work


def test_table3_global_routing(benchmark):
    rows, sums, work = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows.append([
        "SUM",
        f"{sums['br_time']:.2f} ({sums['alg2']:.2f}/{sums['rr']:.2f})",
        f"{sums['isr_time']:.2f}",
        sums["steiner"], sums["br_net"], sums["isr_net"],
        sums["br_vias"], sums["isr_vias"],
    ])
    print_table(
        "Table III (scaled): BR-global vs ISR-global",
        ["chip", "BR time (Alg2/R&R)", "ISR time", "steiner",
         "BR net", "ISR net", "BR vias", "ISR vias"],
        rows,
    )
    benchmark.extra_info["sums"] = sums
    work.update({
        "br.netlength": sums["br_net"], "br.vias": sums["br_vias"],
        "isr.netlength": sums["isr_net"], "isr.vias": sums["isr_vias"],
        "steiner_bound": sums["steiner"],
    })
    write_bench_record(
        "table3",
        wall_clock={"br.time_s": sums["br_time"], "br.alg2_s": sums["alg2"],
                    "br.ripup_s": sums["rr"], "isr.time_s": sums["isr_time"]},
        work=work,
    )
    # Reproduction shape checks.
    assert sums["br_net"] <= sums["isr_net"] * 1.05, (
        "BR-global netlength must stay at or below ISR-global's level"
    )
    assert sums["steiner"] <= sums["br_net"] * 1.001, (
        "Steiner length is a lower bound"
    )
    # R&R takes a small share of BR-global runtime (paper: < 5 %).
    assert sums["rr"] <= 0.25 * max(sums["br_time"], 1e-9)
    # Via counts: the paper's BR-global also wins vias; at our scale the
    # greedy ISR layer assignment under-uses vias because the tiny
    # instances leave M1 partially free next to the pins, while BR's
    # resource sharing deliberately spreads across layers.  EXPERIMENTS.md
    # discusses this divergence; the via win does reproduce in the
    # detailed-routing comparison (Table I).
    assert sums["br_vias"] > 0 and sums["isr_vias"] > 0
